package core

import (
	"math/rand"
	"testing"

	"repro/internal/dfg"
	"repro/internal/etpn"
	"repro/internal/sched"
	"repro/internal/testability"
)

func params() Params { return DefaultParams(8) }

func loopSignalFor(name string) string {
	if name == dfg.BenchDiffeq || name == dfg.BenchPaulin {
		return "exit"
	}
	return ""
}

func TestSynthesizeAllBenchmarks(t *testing.T) {
	for _, name := range dfg.BenchmarkNames() {
		g, _ := dfg.ByName(name, 8)
		par := params()
		par.LoopSignal = loopSignalFor(name)
		r, err := Synthesize(g, par)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Design == nil || r.ExecTime <= 0 || r.Area.Total <= 0 {
			t.Errorf("%s: incomplete result %+v", name, r)
		}
		if err := r.Design.Validate(); err != nil {
			t.Errorf("%s: invalid final design: %v", name, err)
		}
		if len(r.Trace) == 0 {
			t.Errorf("%s: no mergers committed", name)
		}
	}
}

func TestAllMethodsAllBenchmarks(t *testing.T) {
	for _, name := range dfg.BenchmarkNames() {
		if testing.Short() && name == dfg.BenchEWF {
			continue
		}
		g, _ := dfg.ByName(name, 8)
		par := params()
		par.LoopSignal = loopSignalFor(name)
		for _, method := range Methods() {
			r, err := Run(method, g, par)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, method, err)
			}
			if r.Method != method {
				t.Errorf("%s: method label %q, want %q", name, r.Method, method)
			}
			if err := r.Design.Validate(); err != nil {
				t.Errorf("%s/%s: %v", name, method, err)
			}
		}
	}
}

func TestRunUnknownMethod(t *testing.T) {
	g := dfg.Ex(8)
	if _, err := Run("nosuch", g, params()); err == nil {
		t.Fatal("expected unknown-method error")
	}
}

// The paper's Table 1: with the area-optimized latency (Slack 0), Ex is
// synthesized onto two multipliers, one subtracter and one adder, with
// five or six registers.
func TestExMatchesPaperModuleShape(t *testing.T) {
	g := dfg.Ex(8)
	r, err := Synthesize(g, params())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, m := range r.Design.Alloc.Modules {
		counts[m.Class]++
	}
	if counts["*"] != 2 {
		t.Errorf("Ex multipliers = %d, paper has 2", counts["*"])
	}
	if counts["-"] != 1 {
		t.Errorf("Ex subtracters = %d, paper has 1", counts["-"])
	}
	if counts["+"] != 1 {
		t.Errorf("Ex adders = %d, paper has 1", counts["+"])
	}
	if n := r.Design.Alloc.NumRegs(); n < 4 || n > 7 {
		t.Errorf("Ex registers = %d, paper has 5", n)
	}
	if r.ExecTime != 4 {
		t.Errorf("Ex execution time = %d control steps, want 4 (ASAP length, Slack 0)", r.ExecTime)
	}
}

// Diffeq under Slack 0 must reach the paper's module allocation: two
// multipliers holding three multiplications each, one adder, one
// subtracter, one comparator.
func TestDiffeqMatchesPaperModuleShape(t *testing.T) {
	g := dfg.Diffeq(8)
	par := params()
	par.LoopSignal = "exit"
	r, err := Synthesize(g, par)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	sizes := map[string][]int{}
	for _, m := range r.Design.Alloc.Modules {
		counts[m.Class]++
		sizes[m.Class] = append(sizes[m.Class], len(m.Ops))
	}
	if counts["*"] != 2 {
		t.Errorf("Diffeq multipliers = %d, paper has 2 (groups of 3)", counts["*"])
	}
	if counts["-"] != 1 || counts["+"] != 1 || counts["<"] != 1 {
		t.Errorf("Diffeq -/+/< modules = %d/%d/%d, paper has 1/1/1", counts["-"], counts["+"], counts["<"])
	}
	for _, n := range sizes["*"] {
		if n != 3 {
			t.Errorf("Diffeq multiplier holds %d mults, paper's hold 3", n)
		}
	}
}

// Semantics preservation: every method's synthesized design computes the
// same function as the behavioural specification.
func TestSemanticsPreservedAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, name := range dfg.BenchmarkNames() {
		g, _ := dfg.ByName(name, 16)
		par := DefaultParams(16)
		par.LoopSignal = loopSignalFor(name)
		for _, method := range Methods() {
			if testing.Short() && (name == dfg.BenchEWF && method == MethodOurs) {
				continue
			}
			r, err := Run(method, g, par)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, method, err)
			}
			for trial := 0; trial < 10; trial++ {
				in := map[string]uint64{}
				for _, v := range g.Inputs() {
					in[g.Value(v).Name] = rng.Uint64()
				}
				want, err := g.Interpret(16, in)
				if err != nil {
					t.Fatal(err)
				}
				got, err := r.Design.Simulate(16, in)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, method, err)
				}
				for k, w := range want {
					if got[k] != w {
						t.Fatalf("%s/%s: output %s = %d, want %d", name, method, k, got[k], w)
					}
				}
			}
		}
	}
}

// The merger loop must strictly reduce hardware: final module+register
// count below the 1:1 default.
func TestMergerReducesNodeCount(t *testing.T) {
	g := dfg.Dct(8)
	r, err := Synthesize(g, params())
	if err != nil {
		t.Fatal(err)
	}
	oneToOne := g.NumNodes() // modules in the default allocation
	if r.Design.Alloc.NumModules() >= oneToOne {
		t.Errorf("no module merging happened: %d modules", r.Design.Alloc.NumModules())
	}
	if r.Design.Alloc.NumRegs() >= g.NumValues() {
		t.Errorf("no register merging happened: %d registers", r.Design.Alloc.NumRegs())
	}
}

// Conventional connectivity-driven selection "results in a very hard to
// test design because many loops, especially self-loops, are generated"
// (paper §3). With the rescheduler held fixed, the balance principle must
// produce designs with no more self-loops on a clear majority of the
// benchmark suite. (The end-to-end fault-coverage comparison lives in the
// experiment harness; this test checks the structural mechanism.)
func TestBalanceAvoidsSelfLoops(t *testing.T) {
	wins, losses := 0, 0
	for _, name := range []string{dfg.BenchEx, dfg.BenchDct, dfg.BenchDiffeq, dfg.BenchPaulin, dfg.BenchTseng} {
		g, _ := dfg.ByName(name, 8)
		par := params()
		par.LoopSignal = loopSignalFor(name)
		ours, err := Synthesize(g, par)
		if err != nil {
			t.Fatal(err)
		}
		conn := par
		conn.Selection = SelectConnectivity
		conv, err := Synthesize(g, conn)
		if err != nil {
			t.Fatal(err)
		}
		o, c := ours.Design.SelfLoops(), conv.Design.SelfLoops()
		wins += o
		losses += c
		t.Logf("%s: balance self-loops %d (mt %.4f) vs connectivity %d (mt %.4f)",
			name, o, testability.MeanTestability(ours.Design, ours.Metrics),
			c, testability.MeanTestability(conv.Design, conv.Metrics))
	}
	// Producer-consumer module groups make some self-loops intrinsic (the
	// paper's own Table 3 allocation has them); the requirement here is
	// that balance-driven merging does not create systematically loopier
	// data paths than connectivity-driven merging. The discriminative
	// comparison — fault coverage — is run by the experiment harness.
	if wins > losses+2 {
		t.Errorf("balance selection created %d self-loops vs connectivity's %d across the suite", wins, losses)
	}
}

// Slack allows deeper merging: with more latency slack the design needs
// no more modules than with none.
func TestSlackEnablesFewerModules(t *testing.T) {
	g := dfg.Ex(8)
	tight, err := Synthesize(g, params())
	if err != nil {
		t.Fatal(err)
	}
	par := params()
	par.Slack = 4
	loose, err := Synthesize(g, par)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Design.Alloc.NumModules() > tight.Design.Alloc.NumModules() {
		t.Errorf("slack 4 gave %d modules, slack 0 gave %d",
			loose.Design.Alloc.NumModules(), tight.Design.Alloc.NumModules())
	}
}

// Frozen rescheduling (phase-separated ablation) must never move an
// operation: execution time stays at the ASAP length and merging is
// limited.
func TestFrozenRescheduleAblation(t *testing.T) {
	g := dfg.Dct(8)
	par := params()
	par.Reschedule = RescheduleFrozen
	frozen, err := Synthesize(g, par)
	if err != nil {
		t.Fatal(err)
	}
	integrated, err := Synthesize(g, params())
	if err != nil {
		t.Fatal(err)
	}
	if frozen.Design.Alloc.NumModules() < integrated.Design.Alloc.NumModules() {
		t.Errorf("frozen scheduling merged more modules (%d) than integrated (%d)",
			frozen.Design.Alloc.NumModules(), integrated.Design.Alloc.NumModules())
	}
	// The frozen flow's schedule must be the ASAP schedule.
	asap, _ := sched.NewProblem(g).ASAP()
	for _, n := range g.Nodes() {
		if frozen.Design.Sched.Step[n.ID] != asap.Step[n.ID] {
			t.Errorf("frozen flow moved %s from %d to %d", n.Name, asap.Step[n.ID], frozen.Design.Sched.Step[n.ID])
		}
	}
}

// Paper §5: the chosen parameters (k, α, β) "do not influence so much the
// final results" — all three published parameter sets must give the same
// module shape on Ex.
func TestParameterInsensitivityEx(t *testing.T) {
	shapes := map[string]bool{}
	for _, kab := range [][3]float64{{3, 2, 1}, {3, 10, 1}, {3, 1, 10}} {
		g := dfg.Ex(8)
		par := params()
		par.K = int(kab[0])
		par.Alpha = kab[1]
		par.Beta = kab[2]
		r, err := Synthesize(g, par)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		for _, m := range r.Design.Alloc.Modules {
			counts[m.Class]++
		}
		shapes[fmtShape(counts)] = true
	}
	if len(shapes) != 1 {
		t.Errorf("parameter sets produced %d distinct module shapes: %v", len(shapes), shapes)
	}
}

func fmtShape(counts map[string]int) string {
	return "" +
		"*" + string(rune('0'+counts["*"])) +
		"-" + string(rune('0'+counts["-"])) +
		"+" + string(rune('0'+counts["+"]))
}

// The final designs of all methods must expose positive testability on
// every register and module (no unreachable hardware).
func TestFinalDesignsFullyTestable(t *testing.T) {
	for _, name := range []string{dfg.BenchEx, dfg.BenchDiffeq} {
		g, _ := dfg.ByName(name, 8)
		par := params()
		par.LoopSignal = loopSignalFor(name)
		for _, method := range Methods() {
			r, err := Run(method, g, par)
			if err != nil {
				t.Fatal(err)
			}
			for _, nd := range r.Design.Nodes {
				if nd.Kind != etpn.KindRegister && nd.Kind != etpn.KindModule {
					continue
				}
				if r.Metrics.CC[nd.ID] <= 0 || r.Metrics.CO[nd.ID] <= 0 {
					t.Errorf("%s/%s: node %s untestable (CC=%f CO=%f)",
						name, method, nd.Name, r.Metrics.CC[nd.ID], r.Metrics.CO[nd.ID])
				}
			}
		}
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(16)
	if p.K != 3 || p.Alpha != 2 || p.Beta != 1 || p.Width != 16 {
		t.Errorf("unexpected defaults: %+v", p)
	}
}

// FDS and mobility-path scheduling must genuinely differ somewhere: EWF
// has scheduling slack on its non-critical additions, and the two
// baselines take different schedules there.
func TestApproachesDifferOnEWF(t *testing.T) {
	g := dfg.EWF(8)
	par := params()
	r1, err := SynthesizeApproach1(g, par)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SynthesizeApproach2(g, par)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for _, n := range g.Nodes() {
		if r1.Design.Sched.Step[n.ID] != r2.Design.Sched.Step[n.ID] {
			same = false
		}
	}
	if same {
		t.Error("FDS and mobility-path schedules identical on EWF despite slack")
	}
}

// The loop-bound parameter scales Diffeq's execution-time estimate
// linearly: each extra iteration adds one body length.
func TestExecutionTimeLinearInLoopBound(t *testing.T) {
	g := dfg.Diffeq(8)
	par := params()
	par.LoopSignal = "exit"
	var prev int
	for lb := 1; lb <= 4; lb++ {
		par.LoopBound = lb
		r, err := Synthesize(g, par)
		if err != nil {
			t.Fatal(err)
		}
		bodyLen := r.Design.Sched.Len
		want := (lb + 1) * bodyLen
		if r.ExecTime != want {
			t.Errorf("loopBound %d: exec %d, want %d", lb, r.ExecTime, want)
		}
		if r.ExecTime <= prev {
			t.Errorf("execution time not increasing: %d after %d", r.ExecTime, prev)
		}
		prev = r.ExecTime
	}
}
