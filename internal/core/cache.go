package core

import (
	"encoding/hex"
	"hash"
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/cost"
	"repro/internal/dfg"
	"repro/internal/etpn"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/testability"
)

// fp is a 128-bit canonical fingerprint. 128 bits keep the collision
// probability negligible over the thousands of states a synthesis run
// evaluates (a 64-bit key would already need ~2^32 entries for a
// likely collision, but the cache trades a few bytes for not having to
// reason about it at all).
type fp [16]byte

// hasher accumulates a canonical byte encoding into FNV-128a. FNV is
// deterministic across processes (unlike maphash), so fingerprints are
// stable run to run.
type hasher struct {
	h   hash.Hash
	buf [8]byte
}

func newHasher() *hasher { return &hasher{h: fnv.New128a()} }

func (h *hasher) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.buf[i] = byte(v >> (8 * i))
	}
	h.h.Write(h.buf[:])
}

func (h *hasher) int(v int) { h.u64(uint64(int64(v))) }

func (h *hasher) str(s string) {
	h.int(len(s))
	h.h.Write([]byte(s))
}

func (h *hasher) sum() fp {
	var out fp
	h.h.Sum(out[:0])
	return out
}

// stateFingerprint canonically hashes the (schedule, allocation) pair
// of a state. Everything the derived artifacts depend on — the ETPN
// design, its execution time, floorplan area and testability metrics —
// is a pure function of this pair (plus the per-run constants held by
// the cache: the behaviour graph, bit width, library, loop signal and
// bound, testability config), so two states with equal fingerprints
// have bit-identical evaluations. Precedence arcs are deliberately
// excluded: they constrain future rescheduling but leave the current
// design untouched, so states reached through different arc histories
// still share cache entries.
func stateFingerprint(st *state) fp {
	h := newHasher()
	h.str("sched")
	h.int(st.s.Len)
	nn := st.g.NumNodes()
	for i := 0; i < nn; i++ {
		h.int(st.s.Step[dfg.NodeID(i)])
	}
	h.str("mods")
	h.int(len(st.a.Modules))
	for _, m := range st.a.Modules {
		h.str(m.Class)
		h.int(len(m.Ops))
		for _, op := range m.Ops {
			h.int(int(op))
		}
	}
	h.str("regs")
	h.int(len(st.a.Regs))
	for _, r := range st.a.Regs {
		h.int(len(r.Vals))
		for _, v := range r.Vals {
			h.int(int(v))
		}
	}
	return h.sum()
}

// problemFingerprint canonically hashes a scheduling problem. The list
// schedule is a pure function of (graph, Extra, ExtraWeak, ModuleOf,
// MaxLen) — the graph is a per-run constant — so equal fingerprints
// yield identical schedules. Arc slices are hashed in order: the
// scheduler's observable output is insensitive to arc order, but
// hashing the exact sequence keeps the equal-fingerprint ⇒ identical-
// replay argument trivial at the cost of a few extra misses.
func problemFingerprint(p *sched.Problem) fp {
	h := newHasher()
	h.int(p.MaxLen)
	h.str("extra")
	h.int(len(p.Extra))
	for _, a := range p.Extra {
		h.int(int(a[0]))
		h.int(int(a[1]))
	}
	h.str("weak")
	h.int(len(p.ExtraWeak))
	for _, a := range p.ExtraWeak {
		h.int(int(a[0]))
		h.int(int(a[1]))
	}
	h.str("mod")
	nn := p.G.NumNodes()
	for i := 0; i < nn; i++ {
		if m, ok := p.ModuleOf[dfg.NodeID(i)]; ok {
			h.int(m)
		} else {
			h.int(-1)
		}
	}
	return h.sum()
}

// Fingerprint is the exported face of fp: the canonical 128-bit FNV-128a
// fingerprint the evaluation cache keys on, stable across processes and
// runs. The serving layer (internal/server) uses the same encoding to
// coalesce identical in-flight requests and key its result cache, so a
// request fingerprint inherits the cache's collision and determinism
// arguments.
type Fingerprint [16]byte

// String renders the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Hasher is the exported canonical encoder behind the cache fingerprints:
// a byte-order-pinned FNV-128a accumulator with length-prefixed strings.
// Callers write every result-affecting field of a request in a fixed
// order and take Sum; equal sums then imply bit-identical computations
// (the same purity argument the eval cache relies on).
type Hasher struct{ h *hasher }

// NewHasher returns an empty canonical encoder.
func NewHasher() *Hasher { return &Hasher{h: newHasher()} }

// U64 writes a uint64 in little-endian order.
func (h *Hasher) U64(v uint64) { h.h.u64(v) }

// Int writes an int (sign-extended through int64).
func (h *Hasher) Int(v int) { h.h.int(v) }

// Str writes a length-prefixed string.
func (h *Hasher) Str(s string) { h.h.str(s) }

// F64 writes a float64 by its IEEE 754 bit pattern.
func (h *Hasher) F64(v float64) { h.h.u64(math.Float64bits(v)) }

// Sum finalizes the encoding.
func (h *Hasher) Sum() Fingerprint { return Fingerprint(h.h.sum()) }

// Graph writes a canonical encoding of a behaviour graph: name, width,
// then every node (label, kind, operands, result) and every value (name,
// kind, constant, output flag) in id order. Two graphs with equal
// encodings are structurally identical, so every synthesis stage treats
// them identically.
func (h *Hasher) Graph(g *dfg.Graph) {
	h.Str("graph")
	h.Str(g.Name)
	h.Int(g.Width)
	nodes := g.Nodes()
	h.Int(len(nodes))
	for _, n := range nodes {
		h.Str(n.Name)
		h.Int(int(n.Kind))
		h.Int(len(n.In))
		for _, v := range n.In {
			h.Int(int(v))
		}
		h.Int(int(n.Out))
	}
	vals := g.Values()
	h.Int(len(vals))
	for _, v := range vals {
		h.Str(v.Name)
		h.Int(int(v.Kind))
		h.U64(uint64(v.Const))
		if v.IsOutput {
			h.Int(1)
		} else {
			h.Int(0)
		}
	}
}

// Params writes the result-affecting fields of a Params: the algorithm
// knobs (K, α, β, slack, width, loop parameters, policy selectors) but
// none of the operational ones (Workers, Stats, NoCache, NoPrune,
// Validate — all of which are contracted to never change results).
// Callers supplying a custom Class or Lib are outside this encoding and
// must not share fingerprints across different ones; the server only
// ever uses the defaults.
func (h *Hasher) Params(p Params) {
	h.Str("params")
	h.Int(p.K)
	h.F64(p.Alpha)
	h.F64(p.Beta)
	h.Int(p.Slack)
	h.Int(p.Width)
	h.Int(p.LoopBound)
	h.Str(p.LoopSignal)
	h.Int(int(p.Selection))
	h.Int(int(p.Reschedule))
	if p.NoExplore {
		h.Int(1)
	} else {
		h.Int(0)
	}
	if p.ModulesOnly {
		h.Int(1)
	} else {
		h.Int(0)
	}
}

// buildEntry is a memoized state evaluation: the derived design and its
// two cost figures. Designs are immutable after etpn.Build, so entries
// are shared freely between states and across the tie-policy fan-out.
type buildEntry struct {
	d    *etpn.Design
	exec int
	area cost.Estimate
}

// schedEntry is a memoized list-scheduling outcome; infeasible problems
// (latency bound exceeded, cyclic arcs) are cached as errors so the
// fan-out pays for each infeasibility proof once.
type schedEntry struct {
	s   sched.Schedule
	err error
}

// evalCache memoizes the expensive stages of the merger loop, keyed by
// canonical fingerprints, so identical designs reached by different tie
// policies or candidate orders are costed once. One cache is shared by
// all four tie-policy explorations of a Synthesize call (the per-run
// constants — graph, width, library, loop parameters, testability
// config — are identical across them); a mutex makes it safe under the
// fan-out. Cached values are pure functions of their keys, so a hit
// returns bit-identical data to a recomputation and results never
// depend on cache state, sharing, or worker count.
type evalCache struct {
	stats *stats.Stats

	mu      sync.Mutex
	scheds  map[fp]schedEntry
	builds  map[fp]buildEntry
	metrics map[fp]*testability.Metrics
	execs   map[int]int // schedule length -> control steps
}

// newEvalCache returns the cache for one Synthesize call, or nil when
// par disables caching; a nil *evalCache is inert at every call site.
func newEvalCache(par Params) *evalCache {
	if par.NoCache {
		return nil
	}
	return &evalCache{
		stats:   par.Stats,
		scheds:  map[fp]schedEntry{},
		builds:  map[fp]buildEntry{},
		metrics: map[fp]*testability.Metrics{},
		execs:   map[int]int{},
	}
}

func (c *evalCache) enabled() bool { return c != nil }

func (c *evalCache) lookupBuild(key fp) (buildEntry, bool) {
	if c == nil {
		return buildEntry{}, false
	}
	c.mu.Lock()
	e, ok := c.builds[key]
	c.mu.Unlock()
	c.record("cache.build", ok)
	return e, ok
}

func (c *evalCache) storeBuild(key fp, e buildEntry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.builds[key] = e
	c.mu.Unlock()
}

func (c *evalCache) lookupSched(key fp) (schedEntry, bool) {
	if c == nil {
		return schedEntry{}, false
	}
	c.mu.Lock()
	e, ok := c.scheds[key]
	c.mu.Unlock()
	c.record("cache.sched", ok)
	return e, ok
}

func (c *evalCache) storeSched(key fp, e schedEntry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.scheds[key] = e
	c.mu.Unlock()
}

func (c *evalCache) lookupMetrics(key fp) (*testability.Metrics, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	m, ok := c.metrics[key]
	c.mu.Unlock()
	c.record("cache.metrics", ok)
	return m, ok
}

func (c *evalCache) storeMetrics(key fp, m *testability.Metrics) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.metrics[key] = m
	c.mu.Unlock()
}

// lookupExec memoizes the Petri-net critical path by schedule length:
// the control part is a chain (or guarded loop) over exactly Sched.Len
// places, so within one run the execution time depends on nothing else.
func (c *evalCache) lookupExec(schedLen int) (int, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	v, ok := c.execs[schedLen]
	c.mu.Unlock()
	c.record("cache.exec", ok)
	return v, ok
}

func (c *evalCache) storeExec(schedLen, steps int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.execs[schedLen] = steps
	c.mu.Unlock()
}

func (c *evalCache) record(prefix string, hit bool) {
	if c == nil {
		return
	}
	if hit {
		c.stats.Add(prefix+".hit", 1)
	} else {
		c.stats.Add(prefix+".miss", 1)
	}
}
