// Package exec is the hardened execution layer shared by the synthesis
// and ATPG pipelines: structured panic capture, the Partial/Complete
// status vocabulary for budget-degraded results, and the guard helpers
// the library boundaries use to convert internal panics into typed
// errors.
//
// The failure policy it implements (DESIGN.md "Failure semantics"):
//
//   - A panic inside a worker job or a library entry point never crashes
//     the process; it is recovered and converted into an *ExecError that
//     records the pipeline stage, the job index and the goroutine stack,
//     then propagates through the ordinary error paths (including the
//     smallest-index error contract of internal/parallel).
//   - When a deadline or search budget is exhausted mid-run, the caller
//     returns its best-so-far result tagged StatusPartial together with
//     the name of the exhausted budget, instead of an error.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/chaos"
)

// ExecError is a recovered panic, structured for diagnosis: which
// pipeline stage panicked, which job index (fault, cell, policy, ...)
// was being processed, the panic value and the goroutine stack captured
// at the recovery point.
type ExecError struct {
	// Stage names the pipeline stage, e.g. "atpg.podem" or
	// "parallel.ForEach".
	Stage string
	// Index is the job index within the stage, -1 when the stage is not
	// indexed.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured where the panic was
	// recovered.
	Stack []byte
}

// Error renders the headline without the stack; use Stack for the full
// trace.
func (e *ExecError) Error() string {
	if e.Index >= 0 {
		return fmt.Sprintf("exec: panic in %s (job %d): %v", e.Stage, e.Index, e.Value)
	}
	return fmt.Sprintf("exec: panic in %s: %v", e.Stage, e.Value)
}

// AsExecError unwraps err to an *ExecError if one is in its chain.
func AsExecError(err error) (*ExecError, bool) {
	var e *ExecError
	if errors.As(err, &e) {
		return e, true
	}
	return nil, false
}

// Guard runs fn and converts a panic into an *ExecError carrying the
// given stage and job index. It is the single recovery point of the
// execution layer: worker pools and library entry points route their
// bodies through it (or through Guard1). The chaos site fires inside the
// recovery scope, so an injected guard-boundary panic exercises exactly
// the conversion path a real one would.
func Guard(stage string, index int, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = Recovered(stage, index, r)
		}
	}()
	if err := chaos.Step(chaos.SiteExecGuard); err != nil {
		return err
	}
	return fn()
}

// Guard1 is Guard for functions that also return a value. On panic the
// returned value is the zero value.
func Guard1[T any](stage string, index int, fn func() (T, error)) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			out = zero
			err = Recovered(stage, index, r)
		}
	}()
	if err := chaos.Step(chaos.SiteExecGuard); err != nil {
		var zero T
		return zero, err
	}
	return fn()
}

// Recovered converts a recovered panic value into the *ExecError Guard
// would have produced; it is the escape hatch for code that must place its
// own recover (worker-goroutine last-resort recovery in internal/parallel,
// where the panic site is outside any Guard scope).
func Recovered(stage string, index int, r any) *ExecError {
	return &ExecError{Stage: stage, Index: index, Value: r, Stack: debug.Stack()}
}

// Status classifies a pipeline result: complete, or degraded because a
// budget (deadline, backtrack limit, frame window) was exhausted before
// the run could finish.
type Status int

const (
	// StatusComplete: the run finished everything it set out to do.
	StatusComplete Status = iota
	// StatusPartial: a budget was exhausted mid-run and the result is the
	// best state reached by then. Partial results are valid — counters are
	// consistent and every reported figure was genuinely computed — they
	// just cover less ground than a complete run.
	StatusPartial
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusComplete:
		return "complete"
	case StatusPartial:
		return "partial"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Budget names for the Exhausted field of partial results.
const (
	// BudgetDeadline: the context deadline expired or the context was
	// cancelled.
	BudgetDeadline = "deadline"
	// BudgetBacktracks: a PODEM backtrack limit ran out.
	BudgetBacktracks = "backtracks"
	// BudgetFrames: the time-frame window budget ran out.
	BudgetFrames = "frames"
	// BudgetPanic: a stage panicked and was isolated; see the recorded
	// ExecErrors.
	BudgetPanic = "panic"
	// BudgetReachNodes: the Petri-net reachability node budget ran out and
	// the reach set covers a prefix of the state space.
	BudgetReachNodes = "reach-nodes"
)

// CtxExhausted maps a context's termination to a budget name, or ""
// when the context is still live.
func CtxExhausted(ctx context.Context) string {
	if ctx == nil || ctx.Err() == nil {
		return ""
	}
	return BudgetDeadline
}
