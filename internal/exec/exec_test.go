package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestGuardRecoversPanic(t *testing.T) {
	err := Guard("stage.x", 7, func() error { panic("boom") })
	if err == nil {
		t.Fatal("panic not converted to error")
	}
	ee, ok := AsExecError(err)
	if !ok {
		t.Fatalf("error %T is not an *ExecError", err)
	}
	if ee.Stage != "stage.x" || ee.Index != 7 || ee.Value != "boom" {
		t.Errorf("wrong capture: %+v", ee)
	}
	if len(ee.Stack) == 0 {
		t.Error("no stack captured")
	}
	if !strings.Contains(ee.Error(), "stage.x") || !strings.Contains(ee.Error(), "job 7") {
		t.Errorf("rendering: %q", ee.Error())
	}
}

func TestGuardPassesThroughErrors(t *testing.T) {
	want := errors.New("plain")
	if err := Guard("s", -1, func() error { return want }); err != want {
		t.Errorf("got %v, want %v", err, want)
	}
	if err := Guard("s", -1, func() error { return nil }); err != nil {
		t.Errorf("got %v, want nil", err)
	}
}

func TestGuard1ZeroesValueOnPanic(t *testing.T) {
	v, err := Guard1("s", 3, func() (int, error) {
		var xs []int
		return xs[5], nil // index out of range
	})
	if v != 0 {
		t.Errorf("value %d not zeroed", v)
	}
	ee, ok := AsExecError(err)
	if !ok || ee.Index != 3 {
		t.Fatalf("bad error: %v", err)
	}
	// Wrapping preserves AsExecError.
	wrapped := fmt.Errorf("outer: %w", err)
	if _, ok := AsExecError(wrapped); !ok {
		t.Error("AsExecError lost through wrapping")
	}
}

func TestStatusString(t *testing.T) {
	if StatusComplete.String() != "complete" || StatusPartial.String() != "partial" {
		t.Error("status rendering wrong")
	}
}

func TestCtxExhausted(t *testing.T) {
	if got := CtxExhausted(context.Background()); got != "" {
		t.Errorf("live context reported %q", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := CtxExhausted(ctx); got != BudgetDeadline {
		t.Errorf("cancelled context reported %q", got)
	}
	if got := CtxExhausted(nil); got != "" {
		t.Errorf("nil context reported %q", got)
	}
}
