package hlts

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (see DESIGN.md §4). Each benchmark runs the full
// pipeline for its experiment at 4 bits with a reduced fault sample so a
// `go test -bench=.` pass stays tractable; cmd/hltsbench regenerates the
// full-width tables.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/report"
	"repro/internal/rtl"
	"repro/internal/stats"
)

// benchATPG is the reduced campaign used inside testing.B loops.
func benchATPG(seed int64) atpg.Config {
	cfg := atpg.DefaultConfig(seed)
	cfg.SampleFaults = 250
	cfg.RandomBatches = 2
	cfg.SeqLen = 12
	cfg.Restarts = 1
	cfg.BacktrackLimit = 20
	return cfg
}

// tableCell runs one (benchmark, method) cell of a table at 4 bits.
func tableCell(b *testing.B, bench, method string) {
	b.Helper()
	g, err := dfg.ByName(bench, 4)
	if err != nil {
		b.Fatal(err)
	}
	par := core.DefaultParams(4)
	if bench == dfg.BenchDiffeq || bench == dfg.BenchPaulin {
		par.LoopSignal = "exit"
	}
	res, err := core.Run(method, g, par)
	if err != nil {
		b.Fatal(err)
	}
	nl, err := rtl.Generate(res.Design, 4, rtl.NormalMode)
	if err != nil {
		b.Fatal(err)
	}
	ares, err := atpg.Run(nl.C, benchATPG(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(100*ares.Coverage, "cov%")
	b.ReportMetric(float64(ares.TestCycles), "cycles")
	b.ReportMetric(res.Area.Total, "area")
}

func benchmarkTable(b *testing.B, bench string) {
	for _, method := range core.Methods() {
		b.Run(method, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tableCell(b, bench, method)
			}
		})
	}
}

// BenchmarkTable1Ex regenerates Table 1 (the Ex benchmark: module and
// register allocation, #mux, fault coverage, TG effort, test cycles).
func BenchmarkTable1Ex(b *testing.B) { benchmarkTable(b, dfg.BenchEx) }

// BenchmarkTable2Dct regenerates Table 2 (the Dct benchmark, including
// the area column).
func BenchmarkTable2Dct(b *testing.B) { benchmarkTable(b, dfg.BenchDct) }

// BenchmarkTable3Diffeq regenerates Table 3 (the Diffeq benchmark).
func BenchmarkTable3Diffeq(b *testing.B) { benchmarkTable(b, dfg.BenchDiffeq) }

// BenchmarkFigure1SRDemo regenerates the Figure 1 rescheduling
// demonstration (SR1/SR2 order choice).
func BenchmarkFigure1SRDemo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Figure1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2ExSchedule regenerates Figure 2: the Ex schedule under
// the integrated synthesis algorithm.
func BenchmarkFigure2ExSchedule(b *testing.B) {
	cfg := report.DefaultConfig(1)
	for i := 0; i < b.N; i++ {
		if _, err := report.Schedule(dfg.BenchEx, 4, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Schedules regenerates Figure 3: the Dct and Diffeq
// schedules under the integrated synthesis algorithm.
func BenchmarkFigure3Schedules(b *testing.B) {
	cfg := report.DefaultConfig(1)
	for i := 0; i < b.N; i++ {
		for _, bench := range []string{dfg.BenchDct, dfg.BenchDiffeq} {
			if _, err := report.Schedule(bench, 4, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkParamSweep regenerates the §5 parameter-sensitivity
// observation: (k, α, β) over the Ex benchmark.
func BenchmarkParamSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := report.ParameterSweep(dfg.BenchEx, 4, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkAblationSelection isolates the pair-selection policy (balance
// versus connectivity), the core design choice of paper §3.
func BenchmarkAblationSelection(b *testing.B) {
	g := dfg.Ex(4)
	for _, sel := range []struct {
		name string
		s    core.SelectionPolicy
	}{{"balance", core.SelectBalance}, {"connectivity", core.SelectConnectivity}} {
		b.Run(sel.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				par := core.DefaultParams(4)
				par.Selection = sel.s
				res, err := core.Synthesize(g, par)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Design.SelfLoops()), "selfloops")
			}
		})
	}
}

// BenchmarkAblationReschedule isolates the rescheduling transformation
// (SR merge-sort versus append versus frozen schedule), the design choice
// of paper §4.3.
func BenchmarkAblationReschedule(b *testing.B) {
	g := dfg.Dct(4)
	for _, rs := range []struct {
		name string
		r    core.ReschedulePolicy
	}{
		{"mergesortSR", core.RescheduleMergeSort},
		{"append", core.RescheduleAppend},
		{"frozen", core.RescheduleFrozen},
	} {
		b.Run(rs.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				par := core.DefaultParams(4)
				par.Reschedule = rs.r
				res, err := core.Synthesize(g, par)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Design.Alloc.NumModules()), "modules")
			}
		})
	}
}

// BenchmarkSynthesize measures the synthesis core per table benchmark
// and bit width, with the memoized evaluation cache on and off. The
// cached variants report the build-cache hit rate; CI records the
// sub-benchmark timings in BENCH_synth.json, where the cache=on /
// cache=off ratio is the memoization win (expect ≥1.5x on Diffeq at
// 16 bits).
func BenchmarkSynthesize(b *testing.B) {
	for _, bench := range []string{dfg.BenchEx, dfg.BenchDct, dfg.BenchDiffeq} {
		for _, width := range []int{4, 8, 16} {
			for _, cached := range []bool{true, false} {
				mode := "on"
				if !cached {
					mode = "off"
				}
				b.Run(fmt.Sprintf("%s/w%d/cache=%s", bench, width, mode), func(b *testing.B) {
					g, err := dfg.ByName(bench, width)
					if err != nil {
						b.Fatal(err)
					}
					par := core.DefaultParams(width)
					if bench == dfg.BenchDiffeq {
						par.LoopSignal = "exit"
					}
					par.NoCache = !cached
					st := stats.New()
					par.Stats = st
					for i := 0; i < b.N; i++ {
						if _, err := core.Synthesize(g, par); err != nil {
							b.Fatal(err)
						}
					}
					if cached {
						b.ReportMetric(100*st.HitRate("cache.build"), "build-hit%")
						b.ReportMetric(100*st.HitRate("cache.metrics"), "metrics-hit%")
					}
				})
			}
		}
	}
}

// BenchmarkSynthesisAllBenchmarks measures the synthesis core alone
// (no gate level, no ATPG) over the whole benchmark suite.
func BenchmarkSynthesisAllBenchmarks(b *testing.B) {
	for _, name := range dfg.BenchmarkNames() {
		b.Run(name, func(b *testing.B) {
			g, err := dfg.ByName(name, 8)
			if err != nil {
				b.Fatal(err)
			}
			par := core.DefaultParams(8)
			if name == dfg.BenchDiffeq || name == dfg.BenchPaulin {
				par.LoopSignal = "exit"
			}
			for i := 0; i < b.N; i++ {
				if _, err := core.Synthesize(g, par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGateLevelFaultSim measures the bit-parallel fault-simulation
// substrate on an 8-bit synthesized Diffeq.
func BenchmarkGateLevelFaultSim(b *testing.B) {
	g := dfg.Diffeq(8)
	par := core.DefaultParams(8)
	par.LoopSignal = "exit"
	res, err := core.Synthesize(g, par)
	if err != nil {
		b.Fatal(err)
	}
	nl, err := rtl.Generate(res.Design, 8, rtl.NormalMode)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchATPG(1)
	cfg.MaxFrames = 2 // random phase dominated
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := atpg.Run(nl.C, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultSimParallel measures the parallel fault-simulation engine
// on the Table 1 substrate — the full collapsed fault list of the 4-bit
// Ex design synthesized by the paper's algorithm — at increasing worker
// counts. workers=1 is the exact sequential path; the other sub-benchmarks
// record the speedup trajectory (expect ≥2x at workers=4 on a 4+-core
// machine; on fewer cores the extra workers only add pool overhead).
// Results are bit-identical at every worker count.
func BenchmarkFaultSimParallel(b *testing.B) {
	g, err := dfg.ByName(dfg.BenchEx, 4)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Synthesize(g, core.DefaultParams(4))
	if err != nil {
		b.Fatal(err)
	}
	nl, err := rtl.Generate(res.Design, 4, rtl.NormalMode)
	if err != nil {
		b.Fatal(err)
	}
	flist := fault.Collapse(nl.C)
	rng := rand.New(rand.NewSource(1998))
	vectors := make([][]uint64, 256)
	for t := range vectors {
		v := make([]uint64, len(nl.C.Inputs))
		for i := range v {
			v[i] = rng.Uint64()
		}
		vectors[t] = v
	}
	counts := []int{1, 2, 4, 8}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 && n != 8 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var det int
			for i := 0; i < b.N; i++ {
				r, err := logicsim.FaultSimWorkers(nl.C, flist, vectors, workers)
				if err != nil {
					b.Fatal(err)
				}
				det = r.NumDet
			}
			b.ReportMetric(float64(det), "detected")
			b.ReportMetric(float64(len(flist)), "faults")
		})
	}
}

// BenchmarkBIST measures the BIST session evaluator on the 4-bit Diffeq
// design at 1 lane (the historical single-session evaluator) and 64
// lanes (PPSFP: all simulator lanes carry independent sessions). Both
// sub-benchmarks spend the same simulation passes per fault, so
// passes/session — the simulation cost per pseudorandom session — drops
// 64x at lanes=64; CI records both rows (with allocs) in
// BENCH_synth.json.
func BenchmarkBIST(b *testing.B) {
	g, err := LoadBenchmark(BenchDiffeq, 4)
	if err != nil {
		b.Fatal(err)
	}
	par := DefaultParams(4)
	par.LoopSignal = "exit"
	res, err := Synthesize(g, par)
	if err != nil {
		b.Fatal(err)
	}
	tpg, misr := SelectBISTRegisters(res, 2, 2)
	nl, err := GenerateNetlistWithBIST(res, 4, tpg, misr)
	if err != nil {
		b.Fatal(err)
	}
	for _, lanes := range []int{1, 64} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			b.ReportAllocs()
			var out *atpg.BISTOutcome
			for i := 0; i < b.N; i++ {
				out, err = RunBISTCfg(nl, 200, 100, BISTConfig{Lanes: lanes})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*out.Coverage, "cov%")
			b.ReportMetric(float64(out.Passes)/float64(out.Evaluated*out.Lanes), "passes/session")
		})
	}
}

// BenchmarkSimEval and BenchmarkSimStep measure the logic-sim inner loop
// on the 4-bit Ex netlist; both must report 0 allocs/op (the reused
// output-buffer contract the fault-simulation loops rely on), which CI
// records in BENCH_synth.json.
func BenchmarkSimEval(b *testing.B) {
	s, pi := benchSim(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Eval(pi)
	}
}

func BenchmarkSimStep(b *testing.B) {
	s, pi := benchSim(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(pi)
	}
}

func benchSim(b *testing.B) (*logicsim.Sim, []uint64) {
	b.Helper()
	g, err := dfg.ByName(dfg.BenchEx, 4)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Synthesize(g, core.DefaultParams(4))
	if err != nil {
		b.Fatal(err)
	}
	nl, err := rtl.Generate(res.Design, 4, rtl.NormalMode)
	if err != nil {
		b.Fatal(err)
	}
	s, err := logicsim.New(nl.C)
	if err != nil {
		b.Fatal(err)
	}
	pi := make([]uint64, len(nl.C.Inputs))
	rng := rand.New(rand.NewSource(1998))
	for i := range pi {
		pi[i] = rng.Uint64()
	}
	return s, pi
}

// Example of the facade API in documentation form.
func ExampleSynthesize() {
	g, _ := LoadBenchmark(BenchEx, 4)
	res, _ := Synthesize(g, DefaultParams(4))
	fmt.Println(res.ExecTime, "control steps")
	// Output: 4 control steps
}
