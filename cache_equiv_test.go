package hlts

// Equivalence suite for the memoized cost-evaluation engine: with the
// fingerprint cache and the ΔC lower-bound pruning enabled (the default),
// every synthesis flow must produce results bit-identical to a run with
// both disabled, on every benchmark and width, with the tie-policy
// exploration fanned out over several workers. `go test -race` runs this
// suite with real goroutine interleavings, so it doubles as the race
// stress test for the cache shared across tie-policy goroutines.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/stats"
)

// cacheEquivFingerprint projects a core.Result onto its full comparable
// content: execution time, area, mux stats, the merger trace, the rendered
// schedule and allocation, and the raw testability fixpoint vectors.
func cacheEquivFingerprint(g *dfg.Graph, r *core.Result) string {
	return fmt.Sprintf("exec=%d area=%v mux=%+v loops=%d trace=%v\n%s\n%s\ncc=%v sc=%v co=%v so=%v",
		r.ExecTime, r.Area, r.Mux, r.Design.SelfLoops(), r.Trace,
		r.Design.Sched.String(g), r.Design.Alloc.String(g),
		r.Metrics.CC, r.Metrics.SC, r.Metrics.CO, r.Metrics.SO)
}

func TestCacheEquivalence(t *testing.T) {
	widths := []int{4, 8, 16}
	if testing.Short() {
		widths = []int{4}
	}
	for _, bench := range equivBenches {
		for _, width := range widths {
			for _, method := range core.Methods() {
				t.Run(fmt.Sprintf("%s/w%d/%s", bench, width, method), func(t *testing.T) {
					g, err := dfg.ByName(bench, width)
					if err != nil {
						t.Fatal(err)
					}
					par := core.DefaultParams(width)
					par.Workers = 4
					if bench == dfg.BenchDiffeq {
						par.LoopSignal = "exit"
					}
					run := func(noCache, noPrune bool) (string, *stats.Stats) {
						p := par
						p.NoCache, p.NoPrune = noCache, noPrune
						p.Stats = stats.New()
						r, err := core.Run(method, g, p)
						if err != nil {
							t.Fatal(err)
						}
						return cacheEquivFingerprint(g, r), p.Stats
					}
					want, _ := run(true, true)
					got, st := run(false, false)
					if got != want {
						t.Errorf("cached+pruned run diverges from uncached:\n--- cached ---\n%s\n--- uncached ---\n%s", got, want)
					}
					// The merger flows must actually exercise the cache, or
					// the equivalence above is vacuous.
					if method == core.MethodOurs || method == core.MethodCAMAD {
						consults := st.Value("cache.build.hit") + st.Value("cache.build.miss")
						if consults == 0 {
							t.Error("cache never consulted; equivalence check is vacuous")
						}
						if st.Value("cache.build.hit") == 0 {
							t.Error("cache never hit; memoization is not engaging")
						}
					}
				})
			}
		}
	}
}
