package hlts

import (
	"context"
	"errors"
	"testing"
)

// The facade entry points must reject nonsensical inputs with the typed
// sentinels, not fail deep inside synthesis (or worse, compute something
// at a width the gate level cannot represent).

func TestLoadBenchmarkRejectsBadWidth(t *testing.T) {
	for _, w := range []int{0, -4, 65, 1 << 20} {
		if _, err := LoadBenchmark(BenchEx, w); !errors.Is(err, ErrBadWidth) {
			t.Errorf("LoadBenchmark(ex, %d) = %v, want ErrBadWidth", w, err)
		}
	}
	for _, w := range []int{1, 4, 64} {
		if _, err := LoadBenchmark(BenchEx, w); err != nil {
			t.Errorf("LoadBenchmark(ex, %d) = %v, want ok", w, err)
		}
	}
}

func TestLoadBenchmarkRejectsUnknownName(t *testing.T) {
	if _, err := LoadBenchmark("no-such-bench", 8); !errors.Is(err, ErrUnknownBenchmark) {
		t.Errorf("LoadBenchmark(no-such-bench) = %v, want ErrUnknownBenchmark", err)
	}
	// A bad width on an unknown benchmark still reports the width first:
	// both are wrong, either sentinel would be justified, but the check
	// order is pinned so callers see stable behaviour.
	if _, err := LoadBenchmark("no-such-bench", 0); !errors.Is(err, ErrBadWidth) {
		t.Errorf("LoadBenchmark(no-such-bench, 0) = %v, want ErrBadWidth", err)
	}
}

func TestCompileVHDLRejectsBadWidth(t *testing.T) {
	src := "entity e is port(a: in bit; z: out bit); end; architecture a of e is begin z <= a; end;"
	for _, w := range []int{0, -1, 65} {
		if _, err := CompileVHDL(src, w); !errors.Is(err, ErrBadWidth) {
			t.Errorf("CompileVHDL(width %d) = %v, want ErrBadWidth", w, err)
		}
	}
}

// RunBISTCtx must degrade to a partial outcome on cancellation — the
// contract every other cancellable job type already honours — so the
// server can cancel BIST jobs when their requester disconnects.
func TestRunBISTCtxCancellation(t *testing.T) {
	g, err := LoadBenchmark(BenchEx, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Synthesize(g, DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	tpg, misr := SelectBISTRegisters(r, 2, 2)
	if len(tpg)+len(misr) == 0 {
		t.Skip("no BIST candidates on this design")
	}
	n, err := GenerateNetlistWithBIST(r, 4, tpg, misr)
	if err != nil {
		t.Fatal(err)
	}

	full, err := RunBISTCtx(context.Background(), n, 100, 40)
	if err != nil {
		t.Fatal(err)
	}
	if full.Status != StatusComplete || full.Evaluated != full.TotalFaults || full.Exhausted != "" {
		t.Errorf("complete session misreported: %+v", full)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	part, err := RunBISTCtx(cancelled, n, 100, 40)
	if err != nil {
		t.Fatal(err)
	}
	if part.Status != StatusPartial || part.Exhausted != "deadline" {
		t.Errorf("cancelled session not partial: %+v", part)
	}
	if part.Evaluated != 0 || part.Detected != 0 {
		t.Errorf("pre-cancelled session evaluated %d faults, detected %d; want 0", part.Evaluated, part.Detected)
	}
	if part.TotalFaults != full.TotalFaults {
		t.Errorf("fault universe changed under cancellation: %d vs %d", part.TotalFaults, full.TotalFaults)
	}
}

func TestSynthesisRejectsBadParamsWidth(t *testing.T) {
	g, err := LoadBenchmark(BenchEx, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, -8, 65} {
		if _, err := Synthesize(g, DefaultParams(w)); !errors.Is(err, ErrBadWidth) {
			t.Errorf("Synthesize(DefaultParams(%d)) = %v, want ErrBadWidth", w, err)
		}
		for _, m := range Methods() {
			if _, err := RunMethod(m, g, DefaultParams(w)); !errors.Is(err, ErrBadWidth) {
				t.Errorf("RunMethod(%s, DefaultParams(%d)) = %v, want ErrBadWidth", m, w, err)
			}
		}
	}
}
