// Package hlts is the public facade of the high-level test synthesis
// system reproducing Yang & Peng, "An Efficient Algorithm to Integrate
// Scheduling and Allocation in High-Level Test Synthesis" (DATE 1998).
//
// The pipeline it exposes:
//
//	behaviour (VHDL subset or built-in benchmark)
//	   └── dfg.Graph                      CompileVHDL / LoadBenchmark
//	        └── synthesis                 Synthesize / RunMethod
//	             └── ETPN design          (schedule + allocation + Petri net control)
//	                  └── gate netlist    Netlist
//	                       └── ATPG       TestDesign
//
// Synthesize runs the paper's Algorithm 1: integrated scheduling and
// allocation driven by controllability/observability balance, with
// ΔC = α·ΔE + β·ΔH merger selection and SR1/SR2 merge-sort rescheduling.
// The three baselines of the paper's evaluation (CAMAD, force-directed
// scheduling + testable left-edge, mobility-path scheduling + testable
// left-edge) run through RunMethod.
//
// Synthesis and test generation are parallel internally: Params.Workers
// and ATPGConfig.Workers set the number of worker goroutines used for the
// tie-policy exploration, fault simulation and the deterministic ATPG
// phase (0 = one per CPU, 1 = exact sequential execution). Results are
// bit-identical at every worker count — the engine in internal/parallel
// merges worker output in a fixed order — so the knobs trade wall-clock
// time only, never reproducibility.
package hlts

import (
	"context"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/dfggen"
	"repro/internal/exec"
	"repro/internal/hdl"
	"repro/internal/report"
	"repro/internal/rtl"
	"repro/internal/scan"
	"repro/internal/validate"
)

// Re-exported types: the facade's vocabulary.
type (
	// Graph is the behavioural data-flow graph IR.
	Graph = dfg.Graph
	// Params configures a synthesis run (k, α, β, latency slack, width...).
	Params = core.Params
	// Result is a synthesized design with its metrics.
	Result = core.Result
	// Netlist is a generated gate-level implementation.
	Netlist = rtl.Netlist
	// ATPGConfig tunes a test-generation campaign.
	ATPGConfig = atpg.Config
	// ATPGResult reports fault coverage, effort and test length.
	ATPGResult = atpg.Result
	// Table is a reproduced experiment table.
	Table = report.Table
	// ExperimentConfig tunes table reproduction.
	ExperimentConfig = report.Config
	// Status reports whether a result is complete or a best-so-far
	// produced under an exhausted budget (deadline, backtrack or frame
	// limit, or an isolated worker panic).
	Status = exec.Status
	// ExecError is a worker panic recovered at a library boundary.
	ExecError = exec.ExecError
	// Checkpoint is the journal behind resumable experiment sweeps: every
	// completed table cell is appended to a JSON-lines file, and a config
	// carrying the journal skips cells already recorded.
	Checkpoint = report.Journal
	// ValidationError is a violated structural invariant reported by the
	// stage-boundary checkers (Params.Validate / ExperimentConfig.Validate):
	// which stage produced the artifact, which invariant failed, and the
	// specifics. See internal/validate.
	ValidationError = validate.Error
)

// Result statuses.
const (
	StatusComplete = exec.StatusComplete
	StatusPartial  = exec.StatusPartial
)

// Typed input errors. The front-end entry points (LoadBenchmark,
// CompileVHDL) and every synthesis flow validate their inputs and reject
// nonsense with one of these — matchable with errors.Is — instead of
// failing deep inside synthesis. A Params carrying a bad width (e.g. from
// DefaultParams(0)) is rejected the same way by Synthesize / RunMethod.
var (
	// ErrBadWidth: the data-path bit width is outside [1, 64].
	ErrBadWidth = dfg.ErrBadWidth
	// ErrUnknownBenchmark: LoadBenchmark was given a name Benchmarks()
	// does not list.
	ErrUnknownBenchmark = dfg.ErrUnknownBenchmark
)

// Synthesis method names (the rows of the paper's tables).
const (
	MethodCAMAD     = core.MethodCAMAD
	MethodApproach1 = core.MethodApproach1
	MethodApproach2 = core.MethodApproach2
	MethodOurs      = core.MethodOurs
)

// Benchmark names.
const (
	BenchEx     = dfg.BenchEx
	BenchDct    = dfg.BenchDct
	BenchDiffeq = dfg.BenchDiffeq
	BenchEWF    = dfg.BenchEWF
	BenchPaulin = dfg.BenchPaulin
	BenchTseng  = dfg.BenchTseng
)

// Benchmarks lists the built-in HLS benchmarks.
func Benchmarks() []string { return dfg.BenchmarkNames() }

// LoadBenchmark constructs a built-in benchmark at the given bit width.
func LoadBenchmark(name string, width int) (*Graph, error) { return dfg.ByName(name, width) }

// GenSpec parameterizes a seeded synthetic benchmark (see
// internal/dfggen). Specs render to "gen:..." names via GenSpec.Name,
// and LoadBenchmark resolves those names, so a generated behaviour is
// addressable everywhere a built-in benchmark is — including the
// daemon's `bench` request field.
type GenSpec = dfggen.Spec

// ErrBadGenSpec tags malformed generator specs and "gen:" names.
var ErrBadGenSpec = dfggen.ErrBadSpec

// GenerateBenchmark builds the graph for a generator spec at the given
// width. Same (spec, width) always yields a byte-identical graph.
func GenerateBenchmark(spec GenSpec, width int) (*Graph, error) {
	return dfggen.Generate(spec, width)
}

// ParseGenBenchmark decodes a canonical "gen:..." benchmark name.
func ParseGenBenchmark(name string) (GenSpec, error) { return dfggen.Parse(name) }

// GenLoopSignal returns the loop-exit value name for a looping
// generated benchmark name ("" otherwise); callers use it to default
// Params.LoopSignal the same way diffeq is special-cased.
func GenLoopSignal(name string) string { return dfggen.LoopSignal(name) }

// CompileVHDL compiles a behavioural VHDL-subset description into a
// data-flow graph.
func CompileVHDL(src string, width int) (*Graph, error) { return hdl.Compile(src, width) }

// DefaultParams returns the paper's default synthesis parameters
// (k, α, β) = (3, 2, 1) at the given width.
func DefaultParams(width int) Params { return core.DefaultParams(width) }

// Synthesize runs the paper's integrated test synthesis (Algorithm 1).
func Synthesize(g *Graph, p Params) (*Result, error) { return core.Synthesize(g, p) }

// SynthesizeCtx is Synthesize under a context: when the context is
// cancelled or its deadline passes, the merger loop stops at the next
// iteration boundary and the best design found so far is returned with
// Status == StatusPartial instead of an error.
func SynthesizeCtx(ctx context.Context, g *Graph, p Params) (*Result, error) {
	return core.SynthesizeCtx(ctx, g, p)
}

// RunMethod runs the named synthesis flow: MethodOurs or one of the
// paper's three baselines.
func RunMethod(method string, g *Graph, p Params) (*Result, error) { return core.Run(method, g, p) }

// RunMethodCtx is RunMethod under a context, with the same graceful
// degradation as SynthesizeCtx for the iterative flows.
func RunMethodCtx(ctx context.Context, method string, g *Graph, p Params) (*Result, error) {
	return core.RunCtx(ctx, method, g, p)
}

// Methods lists the four synthesis flows in the paper's table order.
func Methods() []string { return core.Methods() }

// GenerateNetlist produces the gate-level implementation of a synthesized
// design. With testMode true the data-path control lines become test-mode
// primary inputs (the paper's modifiable-controller assumption); otherwise
// a one-hot FSM controller is generated from the control Petri net.
func GenerateNetlist(r *Result, width int, testMode bool) (*Netlist, error) {
	mode := rtl.NormalMode
	if testMode {
		mode = rtl.TestMode
	}
	return rtl.Generate(r.Design, width, mode)
}

// SelectScanRegisters greedily chooses up to max partial-scan registers
// for a synthesized design, guided by the testability analysis (see
// package scan). It returns the chosen allocation register ids in
// selection order and the mean-testability trajectory (index 0 = no
// scan).
func SelectScanRegisters(r *Result, max int) ([]int, []float64) {
	sel := scan.Select(r.Design, r.Metrics.Config(), max, 1e-9)
	return sel.Regs, sel.MeanTestability
}

// GenerateNetlistWithScan is GenerateNetlist plus a serial scan chain
// through the given allocation registers.
func GenerateNetlistWithScan(r *Result, width int, testMode bool, scanRegs []int) (*Netlist, error) {
	mode := rtl.NormalMode
	if testMode {
		mode = rtl.TestMode
	}
	return rtl.GenerateWithScan(r.Design, width, mode, scanRegs)
}

// SelectBISTRegisters chooses registers to reconfigure for built-in
// self-test: pattern generators (TPG) where controllability is weakest,
// signature registers (MISR) where observability is weakest.
func SelectBISTRegisters(r *Result, nTpg, nMisr int) (tpg, misr []int) {
	return scan.SelectBIST(r.Design, r.Metrics, nTpg, nMisr)
}

// GenerateNetlistWithBIST is GenerateNetlist plus LFSR/MISR self-test
// hardware on the selected registers (rtl.GenerateBIST).
func GenerateNetlistWithBIST(r *Result, width int, tpg, misr []int) (*Netlist, error) {
	return rtl.GenerateBIST(r.Design, width, rtl.NormalMode, tpg, misr)
}

// BISTConfig tunes a BIST session (see atpg.BISTConfig): lane count
// (independent pseudorandom sessions per simulation pass), stimulus seed
// and TPG registers for per-lane seeding.
type BISTConfig = atpg.BISTConfig

// RunBIST evaluates a BIST netlist: the self-test session free-runs for
// the given cycles and a fault counts as detected when its final MISR
// signature differs from the good machine's in any lane. All 64
// simulator lanes carry independent sessions (PPSFP); use RunBISTCfg
// with Lanes: 1 for the historical single-session semantics.
func RunBIST(n *Netlist, sampleFaults, cycles int) (*atpg.BISTOutcome, error) {
	return RunBISTCfg(n, sampleFaults, cycles, BISTConfig{})
}

// RunBISTCtx is RunBIST under a context: on cancellation or deadline the
// session stops at the next fault boundary and reports the coverage over
// the faults evaluated so far with Status == StatusPartial, like every
// other cancellable job in the system.
func RunBISTCtx(ctx context.Context, n *Netlist, sampleFaults, cycles int) (*atpg.BISTOutcome, error) {
	return RunBISTCfgCtx(ctx, n, sampleFaults, cycles, BISTConfig{})
}

// RunBISTCfg is RunBIST with explicit session configuration. When
// cfg.TPGRegs is nil the netlist's recorded TPG registers are used, so
// multi-lane sessions de-phase the on-chip pattern generators per lane.
func RunBISTCfg(n *Netlist, sampleFaults, cycles int, cfg BISTConfig) (*atpg.BISTOutcome, error) {
	return RunBISTCfgCtx(context.Background(), n, sampleFaults, cycles, cfg)
}

// RunBISTCfgCtx is RunBISTCfg under a context (see RunBISTCtx).
func RunBISTCfgCtx(ctx context.Context, n *Netlist, sampleFaults, cycles int, cfg BISTConfig) (*atpg.BISTOutcome, error) {
	if cfg.TPGRegs == nil {
		cfg.TPGRegs = n.BISTTpg
	}
	return atpg.RunBISTCfgCtx(ctx, n.C, sampleFaults, cycles, cfg)
}

// DefaultATPGConfig returns the campaign settings used by the experiment
// harness, seeded for reproducibility.
func DefaultATPGConfig(seed int64) ATPGConfig { return atpg.DefaultConfig(seed) }

// TestDesign runs the stuck-at ATPG campaign (random phase plus
// time-frame PODEM) on a generated netlist and reports fault coverage,
// test-generation effort and test-application cycles — the three
// testability columns of the paper's tables.
func TestDesign(n *Netlist, cfg ATPGConfig) (*ATPGResult, error) {
	return TestDesignCtx(context.Background(), n, cfg)
}

// TestDesignCtx is TestDesign under a context: on cancellation or
// deadline the campaign returns its best-so-far coverage with
// Status == StatusPartial, unresolved faults counted as skipped.
func TestDesignCtx(ctx context.Context, n *Netlist, cfg ATPGConfig) (*ATPGResult, error) {
	if cfg.MaxFrames < 2*(n.Steps+1) {
		cfg.MaxFrames = 2 * (n.Steps + 1)
	}
	return atpg.RunCtx(ctx, n.C, cfg)
}

// DefaultExperimentConfig returns the experiment configuration
// reproducing the paper's setup (widths 4/8/16, per-width (k,α,β)).
func DefaultExperimentConfig(seed int64) ExperimentConfig { return report.DefaultConfig(seed) }

// ReproduceTable regenerates a full experiment table (all four methods at
// all configured widths) for a benchmark: Table 1 is BenchEx, Table 2
// BenchDct, Table 3 BenchDiffeq.
func ReproduceTable(bench string, cfg ExperimentConfig) (*Table, error) {
	return report.RunTable(bench, cfg)
}

// ReproduceTableCtx is ReproduceTable under a context: cells cut short by
// the deadline carry their best-so-far figures and a partial marker in
// the rendered table.
func ReproduceTableCtx(ctx context.Context, bench string, cfg ExperimentConfig) (*Table, error) {
	return report.RunTableCtx(ctx, bench, cfg)
}

// OpenCheckpoint opens (creating if needed) a sweep checkpoint store at
// path — a directory backed by the crash-safe content-addressed store of
// internal/store (a legacy single-file journal at the same path is
// migrated in place). Assign it to ExperimentConfig.Journal to make a
// table run resumable: completed cells are recorded as they finish and
// skipped on the next run. See cmd/hltsbench's -store flag.
func OpenCheckpoint(path string) (*Checkpoint, error) { return report.OpenJournal(path) }

// ValidateDesign runs the structural invariant checkers on a synthesized
// design: arc discipline of the data path, schedule range, allocation
// ownership, disjoint-lifetime register sharing, and the control part. It
// is the check Params.Validate runs automatically at the end of every
// flow; exposed for callers that build or mutate designs themselves.
func ValidateDesign(r *Result) error { return validate.Design(r.Design) }

// ValidateNetlist runs the structural invariant checkers on a generated
// netlist: gate-graph sanity, combinational acyclicity, data-bus wiring
// and — when a scan chain is present — scan-chain completeness and order.
func ValidateNetlist(n *Netlist) error { return validate.Netlist(n) }
