// Command hltsload is an open-loop HTTP load driver for hltsd and
// hltsc: it materializes a deterministic request schedule from a named
// mix profile (see internal/loadgen) and drives it at a fixed arrival
// rate, classifying every response and verifying that repeat requests
// answer byte-identically.
//
//	hltsload -addr http://127.0.0.1:8080 -profile mixed -rate 10 -duration 20s
//	hltsload -addr ... -profile repeat-heavy -rate 25 -duration 8s \
//	         -require-typed -min-hit-rate 0.9 -out load_repeat.json
//
// The same (profile, seed, rate, duration) always issues the identical
// request stream, so a run from a CI log can be replayed anywhere. With
// -out the run summary is written as JSON (throughput, exact p50/p99
// latency quantiles, outcome class counts, /metrics hit-rate deltas);
// tools/benchjson -load converts summaries into the BENCH_load.json
// record CI pins.
//
// Exit status: 0 on success, 1 on operational errors, 2 when an
// assertion flag (-require-typed, -min-hit-rate, identity) fails.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	var (
		addr    = flag.String("addr", "", "base URL of the hltsd/hltsc service (required), e.g. http://127.0.0.1:8080")
		profile = flag.String("profile", loadgen.ProfileMixed, "mix profile: "+strings.Join(loadgen.Profiles(), ", "))
		rate    = flag.Float64("rate", 10, "mean arrival rate, requests/second (open loop)")
		dur     = flag.Duration("duration", 20*time.Second, "arrival window; the run drains in-flight requests after it")
		reqs    = flag.Int("requests", 0, "issue exactly N requests instead of filling -duration")
		conc    = flag.Int("concurrency", 16, "max in-flight requests; the schedule lags rather than skips at the cap")
		seed    = flag.Uint64("seed", 1, "schedule seed; same (profile, seed, rate, duration) replays the identical request stream")
		timeout = flag.Duration("timeout", 60*time.Second, "per-request HTTP timeout")
		out     = flag.String("out", "", "write the run summary as JSON to this file")
		noScr   = flag.Bool("no-scrape", false, "skip the /metrics before/after scrape (for targets without server counters)")

		requireTyped = flag.Bool("require-typed", false, "exit 2 if any response is untyped (non-2xx without a JSON error body) or a transport error")
		minHitRate   = flag.Float64("min-hit-rate", 0, "exit 2 if the scraped cache+coalesce+store hit rate is below this fraction (0 disables)")
		allowDiff    = flag.Bool("allow-identity-violations", false, "do not fail when repeat requests answer differently (they always should answer identically)")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "hltsload: -addr is required")
		flag.Usage()
		os.Exit(1)
	}

	sched, err := loadgen.BuildSchedule(loadgen.ScheduleOptions{
		Profile: *profile, Seed: *seed, Rate: *rate, Duration: *dur, Requests: *reqs,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "hltsload: %s: %d requests (%d unique) over %v at %.1f rps, seed %d\n",
		*profile, len(sched.Requests), sched.UniqueKeys(), *dur, *rate, *seed)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sum, err := loadgen.Run(ctx, sched, loadgen.Options{
		BaseURL:        strings.TrimRight(*addr, "/"),
		Concurrency:    *conc,
		RequestTimeout: *timeout,
		Scrape:         !*noScr,
	})
	if err != nil {
		fatal(err)
	}

	report(sum)
	if *out != "" {
		b, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	failed := false
	if *requireTyped {
		if n := sum.Untyped(); n > 0 {
			fmt.Fprintf(os.Stderr, "hltsload: FAIL: %d untyped responses\n", n)
			failed = true
		}
		if n := sum.Classes[loadgen.ClassTransport]; n > 0 {
			fmt.Fprintf(os.Stderr, "hltsload: FAIL: %d transport errors\n", n)
			failed = true
		}
	}
	if *minHitRate > 0 {
		if !sum.Scraped {
			fmt.Fprintln(os.Stderr, "hltsload: FAIL: -min-hit-rate needs the /metrics scrape")
			failed = true
		} else if sum.HitRate < *minHitRate {
			fmt.Fprintf(os.Stderr, "hltsload: FAIL: hit rate %.3f below %.3f\n", sum.HitRate, *minHitRate)
			failed = true
		}
	}
	if sum.IdentityViolations > 0 && !*allowDiff {
		fmt.Fprintf(os.Stderr, "hltsload: FAIL: %d identity violations on repeat requests\n", sum.IdentityViolations)
		failed = true
	}
	if failed {
		os.Exit(2)
	}
}

func report(s *loadgen.Summary) {
	fmt.Printf("profile %s seed %d: sent %d/%d in %.1fs (%.1f rps, max lag %.0fms)\n",
		s.Profile, s.Seed, s.Sent, s.Requests, s.DurationS, s.Throughput, s.MaxLagMS)
	fmt.Printf("classes:")
	for _, class := range []string{loadgen.ClassOK, loadgen.ClassPartial, loadgen.ClassRejected, loadgen.ClassDraining, loadgen.ClassError, loadgen.ClassUntyped, loadgen.ClassTransport} {
		if n := s.Classes[class]; n > 0 {
			fmt.Printf(" %s=%d", class, n)
		}
	}
	fmt.Println()
	fmt.Printf("latency ms: p50=%.1f p90=%.1f p99=%.1f max=%.1f mean=%.1f\n",
		s.Latency.P50, s.Latency.P90, s.Latency.P99, s.Latency.Max, s.Latency.Mean)
	if s.Scraped {
		fmt.Printf("server: hit rate %.3f (%.0f hits / %.0f admitted), %.0f pipeline runs\n",
			s.HitRate, s.CacheHits, s.Admitted, s.JobsRun)
	}
	if s.IdentityViolations > 0 {
		fmt.Printf("identity violations: %d\n", s.IdentityViolations)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hltsload:", err)
	os.Exit(1)
}
