// Command hlts synthesizes one behaviour with the high-level test
// synthesis system and prints the resulting schedule, allocation, cost and
// testability figures.
//
// Usage:
//
//	hlts -bench diffeq -width 8 -method ours
//	hlts -vhdl design.vhd -width 16 -method approach2 -atpg
//	hlts -bench ex -dot           # emit the behaviour as Graphviz dot
//	hlts -bench dct -etpn         # print the ETPN data path
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	hlts "repro"
	"repro/internal/chaos"
	"repro/internal/stats"
	"repro/internal/testability"
)

func main() {
	var (
		bench   = flag.String("bench", "", "built-in benchmark name ("+fmt.Sprint(hlts.Benchmarks())+")")
		vhdl    = flag.String("vhdl", "", "path to a VHDL-subset source file (alternative to -bench)")
		width   = flag.Int("width", 8, "data-path bit width")
		method  = flag.String("method", hlts.MethodOurs, "synthesis flow: camad, approach1, approach2, ours")
		k       = flag.Int("k", 3, "candidate pairs per iteration (paper's k)")
		alpha   = flag.Float64("alpha", 2, "weight of ΔE in ΔC")
		beta    = flag.Float64("beta", 1, "weight of ΔH in ΔC")
		slack   = flag.Int("slack", 0, "latency slack in control steps over the ASAP length")
		loopSig = flag.String("loop", "", "condition output closing a behavioural loop (diffeq/paulin: exit)")
		runATPG = flag.Bool("atpg", false, "run the gate-level ATPG campaign")
		scanN   = flag.Int("scan", 0, "select up to N partial-scan registers before ATPG")
		seed    = flag.Int64("seed", 1, "ATPG seed")
		faults  = flag.Int("faults", 1500, "fault sample size (0 = all)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for synthesis and ATPG (1 = sequential; results are identical at any count)")
		dot     = flag.Bool("dot", false, "print the behaviour as Graphviz dot and exit")
		verilog = flag.String("verilog", "", "write the generated netlist as structural Verilog to this file")
		etpnOut = flag.Bool("etpn", false, "print the synthesized ETPN data path")
		tstab   = flag.Bool("testability", false, "print the per-node testability analysis")
		stFlg   = flag.Bool("stats", false, "print synthesis cache/stage statistics after the run")
		timeout = flag.Duration("timeout", 0, "overall budget; when it expires, synthesis and ATPG return their best-so-far results marked partial (0 = no limit)")
		valFlg  = flag.Bool("validate", false, "run the structural invariant checkers on every intermediate artifact (design, netlist)")
		chaosFl = flag.String("chaos", "", "fault-injection spec, a recovery-path test hook: seed=N;site=action[:prob];... (see internal/chaos)")
	)
	flag.Parse()

	if *chaosFl != "" {
		in, err := chaos.Parse(*chaosFl)
		if err != nil {
			fatal(err)
		}
		restore := chaos.Install(in)
		defer restore()
		defer func() { fmt.Fprintf(os.Stderr, "hlts: chaos fired %d injected faults\n", in.FiredTotal()) }()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	g, err := loadGraph(*bench, *vhdl, *width)
	if err != nil {
		fatal(err)
	}
	if *dot {
		fmt.Print(g.Dot())
		return
	}

	par := hlts.DefaultParams(*width)
	par.K = *k
	par.Alpha = *alpha
	par.Beta = *beta
	par.Slack = *slack
	par.LoopSignal = *loopSig
	par.Workers = *workers
	par.Validate = *valFlg
	if *stFlg {
		par.Stats = stats.New()
	}
	if par.LoopSignal == "" && (*bench == hlts.BenchDiffeq || *bench == hlts.BenchPaulin) {
		par.LoopSignal = "exit"
	}

	res, err := hlts.RunMethodCtx(ctx, *method, g, par)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("behaviour %s: %d operations, %d values\n", g.Name, g.NumNodes(), g.NumValues())
	fmt.Printf("method %s, width %d, (k,alpha,beta) = (%d,%g,%g), slack %d\n",
		res.Method, *width, *k, *alpha, *beta, *slack)
	if res.Status == hlts.StatusPartial {
		fmt.Printf("NOTE: partial result — %s budget exhausted; figures below are best-so-far\n", res.Exhausted)
	}
	fmt.Println()
	fmt.Println("schedule:")
	fmt.Print(res.Design.Sched.String(g))
	fmt.Println("\nallocation:")
	fmt.Print(res.Design.Alloc.String(g))
	fmt.Printf("\nexecution time: %d control steps\n", res.ExecTime)
	fmt.Printf("area estimate:  %s\n", res.Area)
	fmt.Printf("multiplexers:   %d (%d inputs), self-loops: %d\n",
		res.Mux.Muxes, res.Mux.Inputs, res.Design.SelfLoops())
	fmt.Printf("mean testability: %.4f\n", testability.MeanTestability(res.Design, res.Metrics))
	for _, line := range res.Trace {
		fmt.Println("  " + line)
	}

	if *etpnOut {
		fmt.Println()
		fmt.Print(res.Design.String())
	}
	if *tstab {
		fmt.Println()
		fmt.Print(res.Metrics.Summary(res.Design))
	}
	if *verilog != "" {
		n, err := hlts.GenerateNetlist(res, *width, false)
		if err != nil {
			fatal(err)
		}
		if *valFlg {
			if err := hlts.ValidateNetlist(n); err != nil {
				fatal(err)
			}
		}
		if err := os.WriteFile(*verilog, []byte(n.Verilog(g.Name)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s (%s)\n", *verilog, n.C.Stats())
	}
	if *runATPG {
		var scanRegs []int
		if *scanN > 0 {
			var traj []float64
			scanRegs, traj = hlts.SelectScanRegisters(res, *scanN)
			fmt.Printf("\npartial scan: registers %v, mean testability %.4f -> %.4f\n",
				scanRegs, traj[0], traj[len(traj)-1])
		}
		n, err := hlts.GenerateNetlistWithScan(res, *width, false, scanRegs)
		if err != nil {
			fatal(err)
		}
		if *valFlg {
			if err := hlts.ValidateNetlist(n); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("\ngate-level: %s\n", n.C.Stats())
		cfg := hlts.DefaultATPGConfig(*seed)
		cfg.SampleFaults = *faults
		cfg.Workers = *workers
		ares, err := hlts.TestDesignCtx(ctx, n, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ATPG: %s\n", ares)
	}
	if par.Stats != nil {
		fmt.Println("\nsynthesis statistics:")
		par.Stats.WriteText(os.Stdout)
	}
}

func loadGraph(bench, vhdl string, width int) (*hlts.Graph, error) {
	switch {
	case bench != "" && vhdl != "":
		return nil, fmt.Errorf("choose one of -bench and -vhdl")
	case bench != "":
		return hlts.LoadBenchmark(bench, width)
	case vhdl != "":
		src, err := os.ReadFile(vhdl)
		if err != nil {
			return nil, err
		}
		return hlts.CompileVHDL(string(src), width)
	default:
		return nil, fmt.Errorf("one of -bench or -vhdl is required")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hlts:", err)
	os.Exit(1)
}
