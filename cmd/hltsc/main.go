// Command hltsc is the synthesis-cluster coordinator: it fronts a fleet
// of hltsd workers, exposing the same /v1/* API a single worker does.
//
//	hltsc -addr :9090
//	hltsd -addr :8081 -coordinator http://127.0.0.1:9090
//	hltsd -addr :8082 -coordinator http://127.0.0.1:9090
//
// Workers self-register and heartbeat their live utilization; the
// coordinator marks a node suspect after -suspect-beats missed beats and
// dead after -dead-after, routes each request to the rendezvous-ranked
// owner of its fingerprint (identical requests land on the same shard
// and coalesce there), and on dispatch failure or node death retries on
// the next-ranked live node with capped exponential backoff + jitter —
// honoring the request deadline and any Retry-After hint a loaded worker
// returned. An exhausted retry budget degrades to a typed 503 with
// Retry-After, never a hung connection.
//
// Endpoints:
//
//	POST /v1/synthesize           proxied to the owning worker
//	POST /v1/testdesign           proxied to the owning worker
//	GET  /v1/table/{bench}        proxied to the owning worker
//	POST /cluster/v1/register     worker self-registration
//	POST /cluster/v1/heartbeat    worker utilization heartbeat
//	GET  /cluster/v1/nodes        membership table (alive/suspect/dead)
//	GET  /healthz /livez /metrics observability
//
// SIGINT/SIGTERM starts a graceful drain: new requests are rejected with
// 503, in-flight proxied jobs finish (or are cancelled when
// -drain-timeout expires), the health tracker stops, and registry
// watchers close. A second signal forces the drain deadline immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
)

func main() {
	var (
		addr     = flag.String("addr", ":9090", "listen address")
		beat     = flag.Duration("heartbeat", 2*time.Second, "heartbeat period expected of workers (advertised in registration answers)")
		suspectK = flag.Int("suspect-beats", 3, "missed beats before a node is marked suspect")
		deadTO   = flag.Duration("dead-after", 0, "silence before a node is declared dead (default 10 heartbeats)")
		rounds   = flag.Int("rounds", 4, "full passes over the live ranking before a request degrades to 503")
		rBase    = flag.Duration("retry-base", 100*time.Millisecond, "initial backoff between dispatch passes")
		rMax     = flag.Duration("retry-max", 2*time.Second, "backoff cap; worker Retry-After hints are honored up to it")
		maxDL    = flag.Duration("max-deadline", 2*time.Minute, "per-request cap, dispatch retries included; deadline_ms may tighten it")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight proxied requests")
		maxBody  = flag.Int64("max-body", 1<<20, "request-body cap in bytes (applies to job and membership POSTs alike)")
		handoff  = flag.Int("handoff-max", 1024, "hinted-handoff queue bound: failover answers awaiting delivery to their home shard (overflow is dropped and counted)")
		chaosFl  = flag.String("chaos", "", "fault-injection spec, a recovery-path test hook: seed=N;site=action[:prob];... (see internal/chaos)")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("hltsc: ")

	if *chaosFl != "" {
		in, err := chaos.Parse(*chaosFl)
		if err != nil {
			log.Fatalf("bad -chaos spec: %v", err)
		}
		restore := chaos.Install(in)
		defer restore()
		defer func() { log.Printf("chaos fired %d injected faults", in.FiredTotal()) }()
	}

	c := cluster.New(cluster.Config{
		HeartbeatInterval: *beat,
		SuspectBeats:      *suspectK,
		DeadAfter:         *deadTO,
		Rounds:            *rounds,
		RetryBase:         *rBase,
		RetryMax:          *rMax,
		MaxDeadline:       *maxDL,
		MaxBodyBytes:      *maxBody,
		HandoffMax:        *handoff,
	})

	// Log liveness transitions: the watcher channel is lossy by design, so
	// this observes without ever wedging the registry.
	events := c.Registry().Watch()
	go func() {
		for e := range events {
			log.Printf("node %s: %v -> %v", e.ID, e.From, e.To)
		}
	}()

	httpSrv := &http.Server{Addr: *addr, Handler: c.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("coordinating on %s (heartbeat %v, suspect after %d beats)", *addr, *beat, *suspectK)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case sig := <-sigCh:
		log.Printf("%v: draining (timeout %v)", sig, *drainTO)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	// A second signal forces the deadline: in-flight forwards are
	// cancelled and degrade to typed 503s immediately.
	go func() {
		sig := <-sigCh
		log.Printf("%v again: forcing drain", sig)
		cancel()
	}()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := c.Drain(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			log.Printf("drain cut short; in-flight requests degraded to 503")
		} else {
			log.Printf("drain: %v", err)
		}
		fmt.Fprintln(os.Stderr, "hltsc: drained (degraded)")
		os.Exit(0)
	}
	log.Printf("drained cleanly")
}
