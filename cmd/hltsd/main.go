// Command hltsd is the synthesis-as-a-service daemon: it serves the
// high-level test synthesis pipeline over an HTTP JSON API.
//
//	hltsd -addr :8080
//
// Endpoints:
//
//	POST /v1/synthesize      run one synthesis flow on a benchmark or VHDL body
//	POST /v1/testdesign      synthesis + netlist + ATPG (+ optional scan/BIST)
//	GET  /v1/table/{bench}   reproduce a full experiment table
//	GET  /healthz            readiness (503 while draining)
//	GET  /livez              liveness
//	GET  /metrics            Prometheus text-format counters and histograms
//
// Jobs run on a bounded queue with admission control (429 + Retry-After
// at capacity) and fingerprint coalescing: identical concurrent requests
// share one computation and byte-identical responses. With -store DIR,
// completed results are also written through to a crash-safe persistent
// store and reloaded at boot, so a restarted daemon serves a repeat
// workload from a hot cache without recomputing. SIGINT/SIGTERM
// starts a graceful drain — queued jobs finish (or land best-so-far
// partial results when -drain-timeout expires) before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		queue   = flag.Int("queue", 64, "job queue depth; beyond it requests are answered 429")
		jobs    = flag.Int("jobs", 2, "jobs run concurrently")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "total worker-goroutine budget, divided between concurrent jobs and the parallelism inside each")
		maxDL   = flag.Duration("max-deadline", 2*time.Minute, "per-job computation cap; requests may tighten it with deadline_ms but never exceed it")
		drainTO = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget; jobs still running when it expires land best-so-far partial results")
		cacheSz = flag.Int("cache", 128, "result-cache capacity in entries (negative disables)")
		storeFl = flag.String("store", "", "persistent result-store directory: completed results are written through and reloaded at boot, so a restarted daemon serves repeat traffic from a hot cache (empty = in-memory only)")
		valFlg  = flag.Bool("validate", false, "run the structural invariant checkers inside every job")
		chaosFl = flag.String("chaos", "", "fault-injection spec, a recovery-path test hook: seed=N;site=action[:prob];... (see internal/chaos)")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("hltsd: ")

	if *chaosFl != "" {
		in, err := chaos.Parse(*chaosFl)
		if err != nil {
			log.Fatalf("bad -chaos spec: %v", err)
		}
		restore := chaos.Install(in)
		defer restore()
		defer func() { log.Printf("chaos fired %d injected faults", in.FiredTotal()) }()
	}

	var resStore *store.Store
	if *storeFl != "" {
		var err error
		resStore, err = store.Open(*storeFl, store.Options{})
		if err != nil {
			log.Fatalf("open -store %s: %v", *storeFl, err)
		}
		defer resStore.Close()
		log.Printf("result store %s: %d records", *storeFl, resStore.Len())
	}

	srv := server.New(server.Config{
		QueueDepth:  *queue,
		Jobs:        *jobs,
		Workers:     *workers,
		MaxDeadline: *maxDL,
		CacheSize:   *cacheSz,
		Validate:    *valFlg,
		Store:       resStore,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (queue %d, jobs %d, workers %d)", *addr, *queue, *jobs, *workers)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case sig := <-sigCh:
		log.Printf("%v: draining (timeout %v)", sig, *drainTO)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	// Stop accepting connections first, then drain the job queue: queued
	// jobs finish, and when the deadline passes the remaining ones are
	// cancelled so they land partial results instead of being lost.
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Drain(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("drain deadline expired; in-flight jobs degraded to partial results")
		} else {
			log.Printf("drain: %v", err)
		}
		fmt.Fprintln(os.Stderr, "hltsd: drained (degraded)")
		os.Exit(0)
	}
	log.Printf("drained cleanly")
}
