// Command hltsd is the synthesis-as-a-service daemon: it serves the
// high-level test synthesis pipeline over an HTTP JSON API.
//
//	hltsd -addr :8080
//
// Endpoints:
//
//	POST /v1/synthesize      run one synthesis flow on a benchmark or VHDL body
//	POST /v1/testdesign      synthesis + netlist + ATPG (+ optional scan/BIST)
//	GET  /v1/table/{bench}   reproduce a full experiment table
//	GET  /healthz            readiness (503 while draining)
//	GET  /livez              liveness
//	GET  /metrics            Prometheus text-format counters and histograms
//
// Jobs run on a bounded queue with admission control (429 + Retry-After
// at capacity) and fingerprint coalescing: identical concurrent requests
// share one computation and byte-identical responses. With -store DIR,
// completed results are also written through to a crash-safe persistent
// store and reloaded at boot, so a restarted daemon serves a repeat
// workload from a hot cache without recomputing. SIGINT/SIGTERM
// starts a graceful drain — queued jobs finish (or land best-so-far
// partial results when -drain-timeout expires) before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/store"
)

// advertiseURL derives the dispatch URL workers announce when -advertise
// is not given: a bare ":8080" listen address advertises localhost.
func advertiseURL(addr string) string {
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	return "http://" + addr
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		queue   = flag.Int("queue", 64, "job queue depth; beyond it requests are answered 429")
		jobs    = flag.Int("jobs", 2, "jobs run concurrently")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "total worker-goroutine budget, divided between concurrent jobs and the parallelism inside each")
		maxDL   = flag.Duration("max-deadline", 2*time.Minute, "per-job computation cap; requests may tighten it with deadline_ms but never exceed it")
		drainTO = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget; jobs still running when it expires land best-so-far partial results")
		cacheSz = flag.Int("cache", 128, "result-cache capacity in entries (negative disables)")
		storeFl = flag.String("store", "", "persistent result-store directory: completed results are written through and reloaded at boot, so a restarted daemon serves repeat traffic from a hot cache (empty = in-memory only)")
		valFlg  = flag.Bool("validate", false, "run the structural invariant checkers inside every job")
		chaosFl = flag.String("chaos", "", "fault-injection spec, a recovery-path test hook: seed=N;site=action[:prob];... (see internal/chaos)")
		coord   = flag.String("coordinator", "", "coordinator base URL (e.g. http://host:9090): register this worker with an hltsc coordinator and heartbeat utilization (empty = standalone)")
		adv     = flag.String("advertise", "", "base URL the coordinator should dispatch to (default derived from -addr)")
		beat    = flag.Duration("heartbeat", 2*time.Second, "heartbeat period when registered with a coordinator (the coordinator's registration answer may override it)")
		replInt = flag.Duration("replicate-interval", 2*time.Second, "anti-entropy period for peer-to-peer store replication; needs both -store and -coordinator (0 disables)")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("hltsd: ")

	if *chaosFl != "" {
		in, err := chaos.Parse(*chaosFl)
		if err != nil {
			log.Fatalf("bad -chaos spec: %v", err)
		}
		restore := chaos.Install(in)
		defer restore()
		defer func() { log.Printf("chaos fired %d injected faults", in.FiredTotal()) }()
	}

	var resStore *store.Store
	if *storeFl != "" {
		var err error
		resStore, err = store.Open(*storeFl, store.Options{})
		if err != nil {
			log.Fatalf("open -store %s: %v", *storeFl, err)
		}
		defer resStore.Close()
		log.Printf("result store %s: %d records", *storeFl, resStore.Len())
	}

	advertise := *adv
	if advertise == "" {
		advertise = advertiseURL(*addr)
	}

	// Peer-to-peer store replication: a worker with BOTH a private store
	// and a coordinator runs the anti-entropy loop (pulling records its
	// peers hold) and offers its Fetch hook to the server as read-repair.
	st := stats.New()
	var repl *cluster.Replicator
	var peerFetch server.PeerFetchFunc
	if *coord != "" && resStore != nil && *replInt > 0 {
		repl = cluster.StartReplicator(cluster.ReplicatorConfig{
			Coordinator: *coord,
			SelfID:      advertise,
			Store:       resStore,
			Interval:    *replInt,
			Stats:       st,
		})
		peerFetch = repl.Fetch
		log.Printf("replicating store %s with peers via %s every %v", *storeFl, *coord, *replInt)
	}

	srv := server.New(server.Config{
		QueueDepth:  *queue,
		Jobs:        *jobs,
		Workers:     *workers,
		MaxDeadline: *maxDL,
		CacheSize:   *cacheSz,
		Validate:    *valFlg,
		Store:       resStore,
		PeerFetch:   peerFetch,
		Stats:       st,
	})
	// The cluster.worker.kill chaos site wraps the whole handler: when a
	// -chaos spec arms it, the daemon dies abruptly mid-request — the
	// node-crash scenario the coordinator's failover path must absorb.
	// Dormant it costs one atomic load per request.
	handler := cluster.Killable(srv.Handler(), func() {
		log.Printf("chaos: cluster.worker.kill fired; dying abruptly")
		os.Exit(137)
	})
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (queue %d, jobs %d, workers %d)", *addr, *queue, *jobs, *workers)
		errCh <- httpSrv.ListenAndServe()
	}()

	var agent *cluster.Agent
	if *coord != "" {
		agent = cluster.StartAgent(cluster.AgentConfig{
			Coordinator: *coord,
			ID:          advertise,
			Advertise:   advertise,
			Capacity:    cluster.Capacity{Jobs: *jobs, Workers: *workers, QueueDepth: *queue},
			Interval:    *beat,
			Stats:       srv.Stats(),
			Snapshot: func() cluster.Utilization {
				snap := srv.Snapshot()
				u := cluster.Utilization{
					Queued:       snap.Queued,
					Inflight:     snap.Inflight,
					CacheHitRate: snap.CacheHitRate,
					JobsRun:      snap.JobsRun,
				}
				if snap.HasStore {
					// The store gauge in each beat is what lets the
					// coordinator compute replication lag across shards.
					u.Store = &cluster.StoreUtil{
						Records:   snap.StoreRecords,
						LiveBytes: snap.StoreLiveBytes,
						Gen:       snap.StoreCursor.Gen,
						Seg:       snap.StoreCursor.Seg,
						Off:       snap.StoreCursor.Off,
					}
				}
				return u
			},
		})
		log.Printf("registered with coordinator %s as %s (heartbeat %v)", *coord, advertise, *beat)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case sig := <-sigCh:
		log.Printf("%v: draining (timeout %v)", sig, *drainTO)
	}
	if agent != nil {
		// Stop heartbeating first: the coordinator marks this node Suspect,
		// then Dead, and routes around it while the drain finishes.
		agent.Stop()
	}
	if repl != nil {
		// Stop pulling from peers before the drain closes the store.
		repl.Stop()
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	// Stop accepting connections first, then drain the job queue: queued
	// jobs finish, and when the deadline passes the remaining ones are
	// cancelled so they land partial results instead of being lost.
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Drain(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("drain deadline expired; in-flight jobs degraded to partial results")
		} else {
			log.Printf("drain: %v", err)
		}
		fmt.Fprintln(os.Stderr, "hltsd: drained (degraded)")
		os.Exit(0)
	}
	log.Printf("drained cleanly")
}
