// Command hltsbench regenerates the paper's experiments: Tables 1-3
// (Ex, Dct, Diffeq at 4/8/16 bits across the four synthesis flows),
// Figures 1-3 (the SR1/SR2 rescheduling demonstration and the synthesized
// schedules), the parameter-sensitivity sweep of §5, and the design-choice
// ablations.
//
// Usage:
//
//	hltsbench -all                     # everything, text format
//	hltsbench -table 2 -widths 4,8     # just Table 2 at 4 and 8 bits
//	hltsbench -figure 3
//	hltsbench -sweep -ablation
//	hltsbench -all -markdown           # EXPERIMENTS.md body
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/atpg"
	"repro/internal/chaos"
	"repro/internal/dfg"
	"repro/internal/dfggen"
	"repro/internal/report"
	"repro/internal/stats"
)

var tableBench = map[int]string{1: dfg.BenchEx, 2: dfg.BenchDct, 3: dfg.BenchDiffeq, 4: dfg.BenchEWF}

func main() {
	var (
		table    = flag.Int("table", 0, "reproduce one table (1 = Ex, 2 = Dct, 3 = Diffeq, 4 = EWF)")
		benchFlg = flag.String("bench", "", "run the table for an arbitrary benchmark (ewf, paulin, tseng, ...)")
		figure   = flag.Int("figure", 0, "reproduce one figure (1 = SR demo, 2 = Ex schedule, 3 = Dct+Diffeq schedules)")
		sweep    = flag.Bool("sweep", false, "run the (k, alpha, beta) parameter sweep")
		ablation = flag.Bool("ablation", false, "run the design-choice ablations")
		scanFlg  = flag.Bool("scan", false, "run the partial-scan extension study")
		bistFlg  = flag.Bool("bist", false, "run the BIST lane-parallel (PPSFP) extension study")
		all      = flag.Bool("all", false, "run every table, figure, sweep and ablation")
		widths   = flag.String("widths", "4,8,16", "comma-separated bit widths")
		seed     = flag.Int64("seed", 1998, "experiment seed")
		faults   = flag.Int("faults", 1500, "fault sample size per campaign")
		parallel = flag.Int("parallel", 4, "concurrent experiment cells")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines inside each synthesis/campaign (1 = sequential; results are identical at any count)")
		markdown = flag.Bool("markdown", false, "emit tables as markdown")
		statsFlg = flag.Bool("stats", false, "print synthesis cache/stage statistics after the run")
		timeout  = flag.Duration("timeout", 0, "overall budget; when it expires, in-flight cells finish with their best-so-far figures, marked *partial in the table (0 = no limit)")
		storeFl  = flag.String("store", "", "checkpoint store directory: completed cells are recorded there and skipped when the same sweep is rerun (a killed run resumes where it stopped); shares the crash-safe format of hltsd -store")
		resume   = flag.String("resume", "", "deprecated alias for -store (a legacy single-file journal at this path is migrated in place)")
		valFlg   = flag.Bool("validate", false, "run the structural invariant checkers on every cell's design and netlist")
		chaosFl  = flag.String("chaos", "", "fault-injection spec, a recovery-path test hook: seed=N;site=action[:prob];... (see internal/chaos)")

		gen       = flag.Int("gen", 0, "run the generated-suite table over N seeded synthetic behaviours (see internal/dfggen)")
		genSeed   = flag.Uint64("gen-seed", 1, "base seed of the generated suite; behaviour i uses seed base+i")
		genOps    = flag.Int("gen-ops", 24, "operation count of each generated behaviour")
		genMix    = flag.String("gen-mix", "mixed", "op-kind mix: arith, mul, logic, cmp, mixed, diffeq")
		genShape  = flag.String("gen-shape", "mesh", "DAG shape: mesh, wide, deep, diamond")
		genFanout = flag.Int("gen-fanout", 2, "fan-out hub bias 1..8")
		genLoop   = flag.Bool("gen-loop", false, "append the Diffeq-style loop idiom to each generated behaviour")
		genCond   = flag.Bool("gen-cond", false, "append a conditional-select idiom to each generated behaviour")
		genMethod = flag.String("gen-method", "ours", "synthesis flow for the generated suite (camad, approach1, approach2, ours)")
	)
	flag.Parse()

	if *chaosFl != "" {
		in, err := chaos.Parse(*chaosFl)
		if err != nil {
			fatal(err)
		}
		restore := chaos.Install(in)
		defer restore()
		defer func() { fmt.Fprintf(os.Stderr, "hltsbench: chaos fired %d injected faults\n", in.FiredTotal()) }()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var st *stats.Stats
	if *statsFlg {
		st = stats.New()
	}
	cfg := report.DefaultConfig(*seed)
	cfg.Parallel = *parallel
	cfg.Workers = *workers
	cfg.Stats = st
	cfg.Validate = *valFlg
	var ws []int
	for _, f := range strings.Split(*widths, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fatal(fmt.Errorf("bad width %q", f))
		}
		ws = append(ws, w)
	}
	cfg.Widths = ws
	ckptPath := *storeFl
	if ckptPath == "" {
		ckptPath = *resume
	} else if *resume != "" && *resume != *storeFl {
		fatal(fmt.Errorf("-store and -resume name different paths; use -store"))
	}
	if ckptPath != "" {
		j, err := report.OpenJournal(ckptPath)
		if err != nil {
			fatal(err)
		}
		defer j.Close()
		if j.Len() > 0 {
			fmt.Fprintf(os.Stderr, "hltsbench: resuming from %s (%d cells already done)\n", ckptPath, j.Len())
		}
		cfg.Journal = j
	}
	baseATPG := cfg.ATPGFor
	cfg.ATPGFor = func(width int) atpg.Config {
		c := baseATPG(width)
		if *faults > 0 && *faults < c.SampleFaults {
			c.SampleFaults = *faults
		}
		return c
	}

	ran := false
	if *benchFlg != "" {
		ran = true
		fmt.Printf("--- Supplementary table (%s) ---\n", *benchFlg)
		tbl, err := report.RunTableCtx(ctx, *benchFlg, cfg)
		if err != nil {
			fatal(err)
		}
		if *markdown {
			fmt.Println(tbl.Markdown())
		} else {
			fmt.Println(tbl.Render())
		}
	}
	if *all || *table > 0 {
		for n := 1; n <= len(tableBench); n++ {
			if !*all && *table != n {
				continue
			}
			if *all && n > 3 {
				// -all reproduces the paper's three tables; the EWF
				// supplement (34 ops, heavy at 16 bits) stays opt-in.
				continue
			}
			ran = true
			bench := tableBench[n]
			fmt.Printf("--- Table %d (%s) ---\n", n, bench)
			tbl, err := report.RunTableCtx(ctx, bench, cfg)
			if err != nil {
				fatal(err)
			}
			if *markdown {
				fmt.Println(tbl.Markdown())
			} else {
				fmt.Println(tbl.Render())
			}
		}
	}
	if *all || *figure == 1 {
		ran = true
		text, err := report.Figure1()
		if err != nil {
			fatal(err)
		}
		fmt.Println("--- Figure 1 ---")
		fmt.Println(text)
	}
	if *all || *figure == 2 {
		ran = true
		fmt.Println("--- Figure 2 (Ex schedule) ---")
		text, err := report.Schedule(dfg.BenchEx, ws[0], cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(text)
	}
	if *all || *figure == 3 {
		ran = true
		fmt.Println("--- Figure 3 (Dct and Diffeq schedules) ---")
		for _, bench := range []string{dfg.BenchDct, dfg.BenchDiffeq} {
			text, err := report.Schedule(bench, ws[0], cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Println(text)
		}
	}
	if *all || *sweep {
		ran = true
		fmt.Println("--- Parameter sweep (paper §5 remark) ---")
		for _, bench := range []string{dfg.BenchEx, dfg.BenchDct, dfg.BenchDiffeq} {
			rows, err := report.ParameterSweep(bench, ws[0], *workers, st)
			if err != nil {
				fatal(err)
			}
			fmt.Println(report.RenderSweep(bench, rows))
		}
	}
	if *all || *ablation {
		ran = true
		fmt.Println("--- Design-choice ablations ---")
		for _, bench := range []string{dfg.BenchEx, dfg.BenchDct, dfg.BenchDiffeq} {
			rows, err := report.Ablations(bench, ws[0], *workers, st)
			if err != nil {
				fatal(err)
			}
			fmt.Println(report.RenderAblations(bench, rows))
		}
	}
	if *all || *scanFlg {
		ran = true
		fmt.Println("--- Partial-scan extension study (diffeq, 4-bit) ---")
		text, err := report.ScanStudy(dfg.BenchDiffeq, 4, 4, *seed, *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Println(text)
	}
	if *all || *bistFlg {
		ran = true
		fmt.Println("--- BIST lane-parallel study (diffeq, 4-bit) ---")
		text, err := report.BISTStudy(dfg.BenchDiffeq, 4, 2, 2, []int{100, 400}, *faults, uint64(*seed), *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Println(text)
	}
	if *gen > 0 {
		ran = true
		specs := make([]dfggen.Spec, *gen)
		for i := range specs {
			specs[i] = dfggen.Spec{
				Seed: *genSeed + uint64(i), Ops: *genOps, Mix: *genMix,
				Shape: *genShape, Fanout: *genFanout, Loop: *genLoop, Cond: *genCond,
			}
		}
		fmt.Printf("--- Generated suite (%d behaviours, seed %d) ---\n", *gen, *genSeed)
		suite, err := report.RunGenSuiteCtx(ctx, specs, *genMethod, ws[0], cfg)
		if err != nil {
			fatal(err)
		}
		if *markdown {
			fmt.Println(suite.Markdown())
		} else {
			fmt.Println(suite.Render())
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if st != nil {
		fmt.Println("--- Synthesis statistics ---")
		st.WriteText(os.Stdout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hltsbench:", err)
	os.Exit(1)
}
