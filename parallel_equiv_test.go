package hlts

// Equivalence suite for the parallel execution engine: every hot path —
// fault simulation, the ATPG campaign and the tie-policy exploration of
// core.Synthesize — must produce bit-identical results at any worker
// count on the paper's three benchmarks. `go test -race` runs this suite
// with real goroutine interleavings, so it doubles as the engine's race
// stress test at the system level (internal/parallel has the unit-level
// one).

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/fault"
	"repro/internal/gates"
	"repro/internal/logicsim"
	"repro/internal/rtl"
)

var equivBenches = []string{dfg.BenchEx, dfg.BenchDct, dfg.BenchDiffeq}

// equivNetlist synthesizes a benchmark with the paper's algorithm at 4
// bits and returns its normal-mode netlist.
func equivNetlist(t *testing.T, bench string) *gates.Circuit {
	t.Helper()
	g, err := dfg.ByName(bench, 4)
	if err != nil {
		t.Fatal(err)
	}
	par := core.DefaultParams(4)
	if bench == dfg.BenchDiffeq {
		par.LoopSignal = "exit"
	}
	res, err := core.Synthesize(g, par)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := rtl.Generate(res.Design, 4, rtl.NormalMode)
	if err != nil {
		t.Fatal(err)
	}
	return nl.C
}

func TestFaultSimWorkersEquivalence(t *testing.T) {
	for _, bench := range equivBenches {
		t.Run(bench, func(t *testing.T) {
			c := equivNetlist(t, bench)
			flist := fault.Sample(fault.Collapse(c), 400)
			rng := rand.New(rand.NewSource(1998))
			vectors := make([][]uint64, 48)
			for ti := range vectors {
				v := make([]uint64, len(c.Inputs))
				for i := range v {
					v[i] = rng.Uint64()
				}
				vectors[ti] = v
			}
			want, err := logicsim.FaultSimWorkers(c, flist, vectors, 1)
			if err != nil {
				t.Fatal(err)
			}
			if want.NumDet == 0 {
				t.Fatal("no faults detected; equivalence check is vacuous")
			}
			for _, workers := range []int{2, 4, 8} {
				got, err := logicsim.FaultSimWorkers(c, flist, vectors, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d: FaultSimResult diverges from sequential", workers)
				}
			}

			// Incremental variant: same detected/detectCycle trajectory.
			runInc := func(workers int) ([]bool, []int, int) {
				detected := make([]bool, len(flist))
				cycles := make([]int, len(flist))
				newly, err := logicsim.FaultSimIncrementalWorkers(c, flist, detected, cycles, vectors, 7, workers)
				if err != nil {
					t.Fatal(err)
				}
				return detected, cycles, newly
			}
			d1, c1, n1 := runInc(1)
			for _, workers := range []int{2, 8} {
				dw, cw, nw := runInc(workers)
				if !reflect.DeepEqual(dw, d1) || !reflect.DeepEqual(cw, c1) || nw != n1 {
					t.Errorf("workers=%d: incremental fault sim diverges from sequential", workers)
				}
			}
		})
	}
}

func TestATPGWorkersEquivalence(t *testing.T) {
	for _, bench := range equivBenches {
		t.Run(bench, func(t *testing.T) {
			c := equivNetlist(t, bench)
			cfg := atpg.DefaultConfig(1998)
			cfg.SampleFaults = 250
			cfg.RandomBatches = 2
			cfg.Restarts = 1
			cfg.BacktrackLimit = 30
			run := func(workers int) *atpg.Result {
				cw := cfg
				cw.Workers = workers
				res, err := atpg.Run(c, cw)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			want := run(1)
			for _, workers := range []int{2, 4, 8} {
				got := run(workers)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d: atpg.Result diverges from sequential:\n%v\nvs\n%v", workers, got, want)
				}
			}
		})
	}
}

// synthFingerprint projects a core.Result onto its deterministic,
// comparable content: metrics, the full merger trace, and the rendered
// schedule and allocation.
func synthFingerprint(g *dfg.Graph, r *core.Result) string {
	return fmt.Sprintf("exec=%d area=%v mux=%+v loops=%d trace=%v\n%s\n%s",
		r.ExecTime, r.Area, r.Mux, r.Design.SelfLoops(), r.Trace,
		r.Design.Sched.String(g), r.Design.Alloc.String(g))
}

func TestSynthesizeWorkersEquivalence(t *testing.T) {
	for _, bench := range equivBenches {
		t.Run(bench, func(t *testing.T) {
			g, err := dfg.ByName(bench, 4)
			if err != nil {
				t.Fatal(err)
			}
			par := core.DefaultParams(4)
			if bench == dfg.BenchDiffeq {
				par.LoopSignal = "exit"
			}
			run := func(workers int) string {
				p := par
				p.Workers = workers
				r, err := core.Synthesize(g, p)
				if err != nil {
					t.Fatal(err)
				}
				return synthFingerprint(g, r)
			}
			want := run(1)
			for _, workers := range []int{2, 4} {
				if got := run(workers); got != want {
					t.Errorf("workers=%d: core.Result diverges from sequential:\n%s\nvs\n%s", workers, got, want)
				}
			}
		})
	}
}
