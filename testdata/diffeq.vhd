-- HAL differential-equation benchmark (one Euler step), in the VHDL
-- subset accepted by the hlts front end. Try:
--   go run ./cmd/hlts -vhdl testdata/diffeq.vhd -width 8 -method ours -atpg
entity diffeq is
  port ( x, y, u, dx, a : in integer;
         x1, y1, u1, exit_c : out integer );
end entity;

architecture behaviour of diffeq is
begin
  process (x, y, u, dx, a)
    variable t1, t2, t3, t4, t5, t6 : integer;
  begin
    t1 := 3 * x;
    t2 := u * dx;
    t3 := 3 * y;
    t4 := t1 * t2;
    t5 := t3 * dx;
    t6 := u - t4;
    u1 <= t6 - t5;
    y1 <= y + u * dx;
    x1 <= x + dx;
    exit_c <= (x + dx) < a;
  end process;
end architecture;
