-- 4-tap FIR section with a saturation flag (see examples/vhdlflow).
entity fir4 is
  port ( x0, x1, x2, x3, limit : in integer;
         y, over : out integer );
end entity;

architecture behaviour of fir4 is
begin
  process (x0, x1, x2, x3, limit)
    variable p0, p1, p2, p3, s1, s2 : integer;
  begin
    p0 := 5 * x0;
    p1 := 9 * x1;
    p2 := 9 * x2;
    p3 := 5 * x3;
    s1 := p0 + p1;
    s2 := p2 + p3;
    y    <= s1 + s2;
    over <= limit < (s1 + s2);
  end process;
end architecture;
