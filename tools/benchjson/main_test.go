package main

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: repro
BenchmarkSynthesize/ex/w4/cache=on-4         	     100	    123456 ns/op	        59.20 build-hit%
BenchmarkSynthesize/ex/w4/cache=off-4        	      50	    234567 ns/op
PASS
ok  	repro	1.234s
`
	results, err := parseBench(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results, want 2", len(results))
	}
	on := results[0]
	if on.Name != "BenchmarkSynthesize/ex/w4/cache=on-4" || on.Iterations != 100 {
		t.Errorf("first result: %+v", on)
	}
	if on.Metrics["ns/op"] != 123456 || on.Metrics["build-hit%"] != 59.20 {
		t.Errorf("metrics: %v", on.Metrics)
	}
	if off := results[1]; off.Metrics["ns/op"] != 234567 || len(off.Metrics) != 1 {
		t.Errorf("second result metrics: %v", off.Metrics)
	}
}

func TestParseBenchBadValue(t *testing.T) {
	if _, err := parseBench(strings.NewReader("BenchmarkX-4 10 oops ns/op\n")); err == nil {
		t.Fatal("malformed value not rejected")
	}
}
