package main

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: repro
BenchmarkSynthesize/ex/w4/cache=on-4         	     100	    123456 ns/op	        59.20 build-hit%
BenchmarkSynthesize/ex/w4/cache=off-4        	      50	    234567 ns/op
PASS
ok  	repro	1.234s
`
	results, err := parseBench(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results, want 2", len(results))
	}
	on := results[0]
	if on.Name != "BenchmarkSynthesize/ex/w4/cache=on-4" || on.Iterations != 100 {
		t.Errorf("first result: %+v", on)
	}
	if on.Metrics["ns/op"] != 123456 || on.Metrics["build-hit%"] != 59.20 {
		t.Errorf("metrics: %v", on.Metrics)
	}
	if off := results[1]; off.Metrics["ns/op"] != 234567 || len(off.Metrics) != 1 {
		t.Errorf("second result metrics: %v", off.Metrics)
	}
}

// -benchmem appends B/op and allocs/op pairs; they must parse like any
// other metric, including exact zeros (the logic-sim zero-alloc contract
// CI records).
func TestParseBenchMemColumns(t *testing.T) {
	input := `BenchmarkSimEval-4    	  300000	      3770 ns/op	       0 B/op	       0 allocs/op
BenchmarkBIST/lanes=64-4 	       1	  55566217 ns/op	        64.00 cov%	         1.562 passes/session	  149008 B/op	      92 allocs/op
PASS
`
	results, err := parseBench(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results, want 2", len(results))
	}
	eval := results[0]
	if v, ok := eval.Metrics["allocs/op"]; !ok || v != 0 {
		t.Errorf("allocs/op = %v (present %v), want 0", v, ok)
	}
	if v := eval.Metrics["B/op"]; v != 0 {
		t.Errorf("B/op = %v, want 0", v)
	}
	bist := results[1]
	if bist.Metrics["passes/session"] != 1.562 || bist.Metrics["allocs/op"] != 92 {
		t.Errorf("bist metrics: %v", bist.Metrics)
	}
}

func TestParseBenchBadValue(t *testing.T) {
	if _, err := parseBench(strings.NewReader("BenchmarkX-4 10 oops ns/op\n")); err == nil {
		t.Fatal("malformed value not rejected")
	}
}
