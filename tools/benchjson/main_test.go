package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/loadgen"
)

func TestParseBench(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: repro
BenchmarkSynthesize/ex/w4/cache=on-4         	     100	    123456 ns/op	        59.20 build-hit%
BenchmarkSynthesize/ex/w4/cache=off-4        	      50	    234567 ns/op
PASS
ok  	repro	1.234s
`
	results, err := parseBench(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results, want 2", len(results))
	}
	on := results[0]
	if on.Name != "BenchmarkSynthesize/ex/w4/cache=on-4" || on.Iterations != 100 {
		t.Errorf("first result: %+v", on)
	}
	if on.Metrics["ns/op"] != 123456 || on.Metrics["build-hit%"] != 59.20 {
		t.Errorf("metrics: %v", on.Metrics)
	}
	if off := results[1]; off.Metrics["ns/op"] != 234567 || len(off.Metrics) != 1 {
		t.Errorf("second result metrics: %v", off.Metrics)
	}
}

// -benchmem appends B/op and allocs/op pairs; they must parse like any
// other metric, including exact zeros (the logic-sim zero-alloc contract
// CI records).
func TestParseBenchMemColumns(t *testing.T) {
	input := `BenchmarkSimEval-4    	  300000	      3770 ns/op	       0 B/op	       0 allocs/op
BenchmarkBIST/lanes=64-4 	       1	  55566217 ns/op	        64.00 cov%	         1.562 passes/session	  149008 B/op	      92 allocs/op
PASS
`
	results, err := parseBench(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results, want 2", len(results))
	}
	eval := results[0]
	if v, ok := eval.Metrics["allocs/op"]; !ok || v != 0 {
		t.Errorf("allocs/op = %v (present %v), want 0", v, ok)
	}
	if v := eval.Metrics["B/op"]; v != 0 {
		t.Errorf("B/op = %v, want 0", v)
	}
	bist := results[1]
	if bist.Metrics["passes/session"] != 1.562 || bist.Metrics["allocs/op"] != 92 {
		t.Errorf("bist metrics: %v", bist.Metrics)
	}
}

// TestLoadSummaries round-trips an hltsload summary file into the
// benchmark record schema CI publishes as BENCH_load.json.
func TestLoadSummaries(t *testing.T) {
	sum := `{
  "profile": "repeat-heavy",
  "seed": 7,
  "requests": 200,
  "sent": 200,
  "duration_s": 8.0,
  "throughput_rps": 25.0,
  "classes": {"ok": 198, "partial": 2},
  "identity_violations": 0,
  "latency": {"p50_ms": 3.5, "p90_ms": 9.0, "p99_ms": 40.25, "max_ms": 55, "mean_ms": 6.1},
  "max_lag_ms": 1.5,
  "scraped": true,
  "hit_rate": 0.96,
  "jobs_run": 8,
  "cache_hits": 192,
  "admitted": 200
}`
	path := filepath.Join(t.TempDir(), "load_repeat.json")
	if err := os.WriteFile(path, []byte(sum), 0o644); err != nil {
		t.Fatal(err)
	}
	results, err := loadSummaries(path + ", ") // trailing empty entry is skipped
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("%d results, want 1", len(results))
	}
	r := results[0]
	if r.Name != "Load/repeat-heavy" || r.Iterations != 200 {
		t.Errorf("record header: %+v", r)
	}
	for metric, want := range map[string]float64{
		"req/s":               25.0,
		"p50_ms":              3.5,
		"p99_ms":              40.25,
		"hit_rate":            0.96,
		"jobs_run":            8,
		"ok count":            198,
		"partial count":       2,
		"identity_violations": 0,
	} {
		if got, ok := r.Metrics[metric]; !ok || got != want {
			t.Errorf("metric %q = %v (present %v), want %v", metric, got, ok, want)
		}
	}
	if _, ok := r.Metrics["429 count"]; ok {
		t.Error("absent class gained a count metric")
	}

	// A summary that never scraped /metrics must not report a hit rate.
	unscraped := &loadgen.Summary{Profile: "adversarial-unique", Requests: 10, Classes: map[string]int{"ok": 10}}
	if _, ok := loadResult(unscraped).Metrics["hit_rate"]; ok {
		t.Error("unscraped summary reported hit_rate")
	}

	if _, err := loadSummaries(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"sent": 3}`), 0o644)
	if _, err := loadSummaries(bad); err == nil {
		t.Error("summary without profile accepted")
	}
}

func TestParseBenchBadValue(t *testing.T) {
	if _, err := parseBench(strings.NewReader("BenchmarkX-4 10 oops ns/op\n")); err == nil {
		t.Fatal("malformed value not rejected")
	}
}
