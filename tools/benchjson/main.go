// Command benchjson converts `go test -bench` text output into a JSON
// document, one record per benchmark result with every reported metric
// (ns/op, custom b.ReportMetric units) keyed by unit. CI uses it to
// publish BENCH_synth.json from the BenchmarkSynthesize run so the
// cache-on/cache-off timing ratio is machine-readable across commits.
//
// Usage:
//
//	go test -bench '^BenchmarkSynthesize$' . | go run ./tools/benchjson -out BENCH_synth.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// parseBench extracts the benchmark result lines from go-test output.
// A result line reads "BenchmarkX/sub-4  10  123 ns/op  59.2 hit%":
// name, iteration count, then (value, unit) pairs. Non-benchmark lines
// (headers, PASS, ok) are ignored.
func parseBench(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... FAIL" or a stray prefix match
		}
		res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q on line %q", fields[i], sc.Text())
			}
			res.Metrics[fields[i+1]] = v
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

func main() {
	in := flag.String("in", "", "benchmark output file (default: stdin)")
	out := flag.String("out", "", "JSON output file (default: stdout)")
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	results, err := parseBench(src)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark result lines in input"))
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
