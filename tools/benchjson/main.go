// Command benchjson converts `go test -bench` text output into a JSON
// document, one record per benchmark result with every reported metric
// (ns/op, custom b.ReportMetric units) keyed by unit. CI uses it to
// publish BENCH_synth.json from the BenchmarkSynthesize run so the
// cache-on/cache-off timing ratio is machine-readable across commits.
//
// It also ingests hltsload run summaries: -load takes a comma-separated
// list of summary JSON files (hltsload -out) and emits one record per
// run under the name "Load/<profile>", with throughput, exact latency
// quantiles, hit rate and outcome class counts as metrics. CI uses this
// to publish BENCH_load.json from the load-smoke step.
//
// Usage:
//
//	go test -bench '^BenchmarkSynthesize$' . | go run ./tools/benchjson -out BENCH_synth.json
//	go run ./tools/benchjson -load load_mixed.json,load_repeat.json -out BENCH_load.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/loadgen"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// parseBench extracts the benchmark result lines from go-test output.
// A result line reads "BenchmarkX/sub-4  10  123 ns/op  59.2 hit%":
// name, iteration count, then (value, unit) pairs. Non-benchmark lines
// (headers, PASS, ok) are ignored.
func parseBench(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... FAIL" or a stray prefix match
		}
		res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q on line %q", fields[i], sc.Text())
			}
			res.Metrics[fields[i+1]] = v
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

// loadResult converts one hltsload summary into a benchmark-shaped
// record so load and synthesis timings share the same JSON schema.
// Outcome class counts appear as "<class> count" metrics (e.g. "ok
// count"), so a zero 429 column is distinguishable from a missing one.
func loadResult(sum *loadgen.Summary) Result {
	res := Result{
		Name:       "Load/" + sum.Profile,
		Iterations: int64(sum.Requests),
		Metrics: map[string]float64{
			"req/s":               sum.Throughput,
			"p50_ms":              sum.Latency.P50,
			"p90_ms":              sum.Latency.P90,
			"p99_ms":              sum.Latency.P99,
			"max_lag_ms":          sum.MaxLagMS,
			"identity_violations": float64(sum.IdentityViolations),
		},
	}
	if sum.Scraped {
		res.Metrics["hit_rate"] = sum.HitRate
		res.Metrics["jobs_run"] = sum.JobsRun
	}
	for class, n := range sum.Classes {
		res.Metrics[class+" count"] = float64(n)
	}
	return res
}

func loadSummaries(paths string) ([]Result, error) {
	var results []Result
	for _, path := range strings.Split(paths, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var sum loadgen.Summary
		if err := json.Unmarshal(data, &sum); err != nil {
			return nil, fmt.Errorf("benchjson: %s: %w", path, err)
		}
		if sum.Profile == "" {
			return nil, fmt.Errorf("benchjson: %s: not an hltsload summary (no profile)", path)
		}
		results = append(results, loadResult(&sum))
	}
	return results, nil
}

func main() {
	in := flag.String("in", "", "benchmark output file (default: stdin; unused with -load unless set)")
	load := flag.String("load", "", "comma-separated hltsload summary JSON files to ingest instead of bench output")
	out := flag.String("out", "", "JSON output file (default: stdout)")
	flag.Parse()

	var results []Result
	if *load == "" || *in != "" {
		var src io.Reader = os.Stdin
		if *in != "" {
			f, err := os.Open(*in)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			src = f
		}
		var err error
		results, err = parseBench(src)
		if err != nil {
			fatal(err)
		}
	}
	if *load != "" {
		fromLoad, err := loadSummaries(*load)
		if err != nil {
			fatal(err)
		}
		results = append(results, fromLoad...)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark result lines in input"))
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
