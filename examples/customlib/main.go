// customlib: drive the synthesizer with a hand-built data-flow graph, a
// custom module library (different area trade-offs than the default), and
// a parameter sweep over the paper's (k, alpha, beta) knobs — the workflow
// of a user tuning the synthesis for their own technology.
package main

import (
	"fmt"
	"log"

	hlts "repro"
	"repro/internal/cost"
	"repro/internal/dfg"
)

func main() {
	// A hand-built behaviour: a small complex-multiply-accumulate
	// (re, im) = (ar*br - ai*bi + cr, ar*bi + ai*br + ci).
	g := dfg.New("cmac", 8)
	ar := g.Input("ar")
	ai := g.Input("ai")
	br := g.Input("br")
	bi := g.Input("bi")
	cr := g.Input("cr")
	ci := g.Input("ci")
	t1 := g.Op(dfg.OpMul, "t1", ar, br)
	t2 := g.Op(dfg.OpMul, "t2", ai, bi)
	t3 := g.Op(dfg.OpMul, "t3", ar, bi)
	t4 := g.Op(dfg.OpMul, "t4", ai, br)
	d1 := g.Op(dfg.OpSub, "d1", t1, t2)
	s1 := g.Op(dfg.OpAdd, "s1", t3, t4)
	re := g.Op(dfg.OpAdd, "re", d1, cr)
	im := g.Op(dfg.OpAdd, "im", s1, ci)
	g.MarkOutput(re)
	g.MarkOutput(im)
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Print(g)

	// A custom library where multipliers are comparatively cheap (say, a
	// technology with hard multiplier macros): sharing multipliers buys
	// less, so the cost-driven merger behaves differently.
	macroLib := cost.DefaultLibrary()
	macroLib.MulPerBit2 = 4 // vs 20 in the default library

	for _, lib := range []struct {
		name string
		l    *cost.Library
	}{
		{"default library", nil},
		{"multiplier-macro library", macroLib},
	} {
		fmt.Printf("\n=== %s ===\n", lib.name)
		for _, kab := range [][3]float64{{3, 2, 1}, {1, 1, 10}} {
			par := hlts.DefaultParams(8)
			par.K = int(kab[0])
			par.Alpha, par.Beta = kab[1], kab[2]
			par.Slack = 2
			par.Lib = lib.l
			res, err := hlts.Synthesize(g, par)
			if err != nil {
				log.Fatal(err)
			}
			mults := 0
			for _, m := range res.Design.Alloc.Modules {
				if m.Class == "*" {
					mults++
				}
			}
			fmt.Printf("(k,a,b)=(%.0f,%.0f,%.0f): %d modules (%d mults), %d regs, %d steps, area %.0f\n",
				kab[0], kab[1], kab[2],
				res.Design.Alloc.NumModules(), mults,
				res.Design.Alloc.NumRegs(), res.ExecTime, res.Area.Total)
		}
	}

	fmt.Println("\nThe module library changes the absolute costs the merger optimizes")
	fmt.Println("(multiplier sharing buys 5x less with hard macros), and the")
	fmt.Println("(k, alpha, beta) knobs shift which mergers win their blocks — while")
	fmt.Println("the final allocation shape stays stable, as paper §5 observes.")
}
