// Quickstart: synthesize the Diffeq benchmark with the paper's integrated
// scheduling/allocation algorithm, generate its gate-level implementation,
// and measure its testability with the ATPG campaign — the full pipeline
// in one page of code.
package main

import (
	"fmt"
	"log"

	hlts "repro"
)

func main() {
	// 1. Load a behaviour. Diffeq is the HAL differential-equation
	//    benchmark; its loop closes on the "exit" condition output.
	const width = 8
	g, err := hlts.LoadBenchmark(hlts.BenchDiffeq, width)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("behaviour %s: %d operations\n%s\n", g.Name, g.NumNodes(), g)

	// 2. Synthesize with Algorithm 1: (k, alpha, beta) = (3, 2, 1).
	par := hlts.DefaultParams(width)
	par.LoopSignal = "exit"
	res, err := hlts.Synthesize(g, par)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("schedule after integrated synthesis:")
	fmt.Print(res.Design.Sched.String(g))
	fmt.Println("\nallocation:")
	fmt.Print(res.Design.Alloc.String(g))
	fmt.Printf("\nexecution time %d steps, area %.0f units, %d muxes\n",
		res.ExecTime, res.Area.Total, res.Mux.Muxes)

	// 3. Generate the gate-level implementation (normal mode: a one-hot
	//    FSM controller drives the data path).
	netlist, err := hlts.GenerateNetlist(res, width, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngate level: %s\n", netlist.C.Stats())

	// 4. Check semantics preservation at gate level for one input vector.
	in := map[string]uint64{"x": 2, "y": 5, "u": 100, "dx": 1, "a": 10}
	want, err := g.Interpret(width, in)
	if err != nil {
		log.Fatal(err)
	}
	got, err := netlist.SimulatePass(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gate-level pass: x1=%d y1=%d u1=%d (behavioural: %d %d %d)\n",
		got["x1"], got["y1"], got["u1"], want["x1"], want["y1"], want["u1"])

	// 5. Run the stuck-at ATPG campaign.
	cfg := hlts.DefaultATPGConfig(1)
	cfg.SampleFaults = 600
	ares, err := hlts.TestDesign(netlist, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nATPG: %s\n", ares)
}
