// partialscan: the design-for-test extension built on the paper's
// framework. After integrated synthesis, the testability analysis ranks
// the registers, a greedy selector converts the weakest into scan
// registers, and the ATPG campaign quantifies the coverage gained per
// scanned register — the classic partial-scan trade-off curve.
package main

import (
	"fmt"
	"log"

	hlts "repro"
)

func main() {
	const width = 4
	g, err := hlts.LoadBenchmark(hlts.BenchDiffeq, width)
	if err != nil {
		log.Fatal(err)
	}
	par := hlts.DefaultParams(width)
	par.LoopSignal = "exit"
	res, err := hlts.Synthesize(g, par)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %s: %d modules, %d registers\n",
		g.Name, res.Design.Alloc.NumModules(), res.Design.Alloc.NumRegs())

	regs, traj := hlts.SelectScanRegisters(res, 4)
	fmt.Printf("scan selection order: %v\n", regs)
	for i, mt := range traj {
		fmt.Printf("  %d scan registers -> mean testability %.4f\n", i, mt)
	}

	cfg := hlts.DefaultATPGConfig(5)
	cfg.SampleFaults = 0 // full collapsed fault list: no sampling noise
	cfg.RandomBatches = 2
	fmt.Printf("\n%-14s %10s %12s %12s\n", "scan regs", "coverage", "TG effort", "test cycles")
	for n := 0; n <= len(regs); n++ {
		nl, err := hlts.GenerateNetlistWithScan(res, width, false, regs[:n])
		if err != nil {
			log.Fatal(err)
		}
		ares, err := hlts.TestDesign(nl, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14d %9.2f%% %12d %12d\n", n, 100*ares.Coverage, ares.Effort, ares.TestCycles)
	}
	fmt.Println("\nEach scanned register anchors a controllability/observability island,")
	fmt.Println("so coverage climbs while deterministic search effort falls — the")
	fmt.Println("extension the paper's testability framework was built to support.")
}
