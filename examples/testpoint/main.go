// testpoint: compare the four synthesis flows of the paper's evaluation
// on one benchmark, end to end — schedule, allocation, area, and the
// gate-level ATPG outcome. This is a single cell family of Tables 1-3.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	hlts "repro"
)

func main() {
	bench := flag.String("bench", hlts.BenchDct, "benchmark to compare on")
	width := flag.Int("width", 4, "bit width")
	faults := flag.Int("faults", 600, "fault sample size")
	flag.Parse()

	g, err := hlts.LoadBenchmark(*bench, *width)
	if err != nil {
		log.Fatal(err)
	}
	loop := ""
	if *bench == hlts.BenchDiffeq || *bench == hlts.BenchPaulin {
		loop = "exit"
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "method\tmodules\tregs\tmux\tself-loops\tarea\tgates\tcoverage\teffort(kEval)\ttest cycles\n")
	for _, method := range hlts.Methods() {
		par := hlts.DefaultParams(*width)
		par.LoopSignal = loop
		res, err := hlts.RunMethod(method, g, par)
		if err != nil {
			log.Fatal(err)
		}
		nl, err := hlts.GenerateNetlist(res, *width, false)
		if err != nil {
			log.Fatal(err)
		}
		cfg := hlts.DefaultATPGConfig(7)
		cfg.SampleFaults = *faults
		ares, err := hlts.TestDesign(nl, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.0f\t%d\t%.2f%%\t%d\t%d\n",
			method,
			res.Design.Alloc.NumModules(), res.Design.Alloc.NumRegs(),
			res.Mux.Muxes, res.Design.SelfLoops(), res.Area.Total,
			nl.C.NumGates(), 100*ares.Coverage, ares.Effort, ares.TestCycles)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe integrated flow (ours) trades a few multiplexers for balanced")
	fmt.Println("controllability/observability; on the larger benchmarks that buys")
	fmt.Println("the highest stuck-at coverage of the four flows (paper Tables 1-3).")
}
