// vhdlflow: compile a behavioural VHDL-subset description (the system's
// input format, paper §1) into the data-flow IR, synthesize it with two
// different flows, and compare the resulting data paths.
package main

import (
	"fmt"
	"log"

	hlts "repro"
)

// A 4-tap FIR filter section written in the accepted VHDL subset.
const firSource = `
-- y[n] = c0*x0 + c1*x1 + c2*x2 + c3*x3, with a scaled saturation flag.
entity fir4 is
  port ( x0, x1, x2, x3, limit : in integer;
         y, over : out integer );
end entity;

architecture behaviour of fir4 is
begin
  process (x0, x1, x2, x3, limit)
    variable p0, p1, p2, p3, s1, s2 : integer;
  begin
    p0 := 5 * x0;
    p1 := 9 * x1;
    p2 := 9 * x2;
    p3 := 5 * x3;
    s1 := p0 + p1;
    s2 := p2 + p3;
    y    <= s1 + s2;
    over <= limit < (s1 + s2);
  end process;
end architecture;
`

func main() {
	const width = 8
	g, err := hlts.CompileVHDL(firSource, width)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled entity %q: %d operations, %d values\n\n", g.Name, g.NumNodes(), g.NumValues())
	fmt.Print(g)

	for _, method := range []string{hlts.MethodApproach2, hlts.MethodOurs} {
		par := hlts.DefaultParams(width)
		par.Slack = 1 // allow one extra control step for deeper sharing
		res, err := hlts.RunMethod(method, g, par)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== %s ===\n", method)
		fmt.Print(res.Design.Sched.String(g))
		fmt.Print(res.Design.Alloc.String(g))
		fmt.Printf("execution %d steps, area %.0f, %d muxes, %d self-loops\n",
			res.ExecTime, res.Area.Total, res.Mux.Muxes, res.Design.SelfLoops())

		// Verify the synthesized design still computes the filter.
		in := map[string]uint64{"x0": 1, "x1": 2, "x2": 3, "x3": 4, "limit": 60}
		want, err := g.Interpret(width, in)
		if err != nil {
			log.Fatal(err)
		}
		got, err := res.Design.Simulate(width, in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("y = %d (expected %d), over = %d (expected %d)\n",
			got["y"], want["y"], got["over"], want["over"])
	}
}
