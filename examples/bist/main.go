// bist: the built-in self-test flow (the BIST methodology of the paper's
// reference [10]) on a synthesized data path — select TPG/MISR registers
// from the testability analysis, generate the self-test hardware, run the
// autonomous test session, and export the design as structural Verilog.
package main

import (
	"fmt"
	"log"
	"strings"

	hlts "repro"
)

func main() {
	const width = 4
	g, err := hlts.LoadBenchmark(hlts.BenchDct, width)
	if err != nil {
		log.Fatal(err)
	}
	res, err := hlts.Synthesize(g, hlts.DefaultParams(width))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %s: %d modules, %d registers, area %.0f\n",
		g.Name, res.Design.Alloc.NumModules(), res.Design.Alloc.NumRegs(), res.Area.Total)

	// Select BIST registers from the testability metrics: pattern
	// generators where controllability is weakest, signature registers
	// where observability is weakest.
	tpg, misr := hlts.SelectBISTRegisters(res, 2, 4)
	fmt.Printf("TPG registers:  %v (LFSR pattern generators)\n", tpg)
	fmt.Printf("MISR registers: %v (signature compactors)\n", misr)

	n, err := hlts.GenerateNetlistWithBIST(res, width, tpg, misr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-test netlist: %s\n\n", n.C.Stats())

	// The self-test session: longer sessions detect more faults until the
	// pattern sequence saturates.
	for _, cycles := range []int{30, 100, 300} {
		out, err := hlts.RunBIST(n, 0, cycles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", out)
	}

	// Export as structural Verilog (first lines shown).
	v := n.Verilog("dct_bist")
	lines := strings.SplitN(v, "\n", 12)
	fmt.Println("\nVerilog export (head):")
	for _, l := range lines[:11] {
		fmt.Println("  " + l)
	}
	fmt.Printf("  ... (%d lines total)\n", strings.Count(v, "\n"))
}
